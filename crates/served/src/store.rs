//! The daemon's persistent, content-addressed artifact store.
//!
//! Layout under the store root:
//!
//! ```text
//! store/
//!   jobs/<job-id>.json        job journal: spec + lifecycle state
//!   cells/<cell-key>/
//!     result.json             final CellResult (the cache entry)
//!     ck.rtsnap               in-progress checkpoint (deleted on success)
//!     ck.digests              per-epoch replay-digest log
//! ```
//!
//! Job ids and cell keys are FNV-1a digests of the canonical job spec
//! (see [`JobSpec::identity`]), so an identical resubmit maps to the
//! same paths and is served from cache without re-simulating. All
//! writes go through atomic write-then-rename, so a daemon killed
//! mid-write can never leave a torn journal or cache entry — at worst
//! the old content survives.
//!
//! Corruption is handled asymmetrically by design: a corrupt *job
//! journal* is a typed [`StoreError::Corrupt`] that fails daemon
//! startup (exit code 8 — the operator must intervene, because silently
//! dropping journaled work would break the resume contract), while a
//! corrupt *cell result* is treated as a cache miss and recomputed
//! (the simulator is deterministic, so recomputation self-heals).

use crate::json::Json;
use crate::protocol::{hex_id, parse_hex_id, CellResult, JobSpec, JobState, ProtocolError};
use std::collections::BTreeMap;
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Why a store operation failed.
#[derive(Debug)]
pub enum StoreError {
    /// Filesystem failure; `what` names the operation.
    Io {
        what: &'static str,
        path: PathBuf,
        source: io::Error,
    },
    /// A journal file exists but does not decode. Carried to startup as
    /// a hard error (exit code 8).
    Corrupt { path: PathBuf, detail: String },
    /// The store root exists but is not a directory.
    NotADirectory { path: PathBuf },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io { what, path, source } => {
                write!(f, "cannot {what} {}: {source}", path.display())
            }
            StoreError::Corrupt { path, detail } => {
                write!(f, "store corruption in {}: {detail}", path.display())
            }
            StoreError::NotADirectory { path } => {
                write!(f, "store path {} is not a directory", path.display())
            }
        }
    }
}

impl std::error::Error for StoreError {}

/// One journal entry: a job's spec and where it got to.
#[derive(Debug, Clone)]
pub struct JournaledJob {
    /// Content-address of the spec.
    pub id: u64,
    /// The submitted spec.
    pub spec: JobSpec,
    /// Last journaled lifecycle state.
    pub state: JobState,
    /// Error description for failed / timed-out jobs.
    pub error: Option<String>,
}

/// Handle to a store root. Cheap to clone paths from; all methods are
/// stateless over the filesystem.
#[derive(Debug, Clone)]
pub struct ArtifactStore {
    root: PathBuf,
}

impl ArtifactStore {
    /// Opens (creating if needed) a store rooted at `root`.
    ///
    /// # Errors
    ///
    /// [`StoreError::NotADirectory`] if `root` exists but is a file;
    /// [`StoreError::Io`] if the directories cannot be created.
    pub fn open(root: impl Into<PathBuf>) -> Result<ArtifactStore, StoreError> {
        let root = root.into();
        if root.exists() && !root.is_dir() {
            return Err(StoreError::NotADirectory { path: root });
        }
        for sub in ["jobs", "cells"] {
            let dir = root.join(sub);
            fs::create_dir_all(&dir).map_err(|source| StoreError::Io {
                what: "create directory",
                path: dir.clone(),
                source,
            })?;
        }
        Ok(ArtifactStore { root })
    }

    /// The store root.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn job_path(&self, id: u64) -> PathBuf {
        self.root.join("jobs").join(format!("{}.json", hex_id(id)))
    }

    fn cell_dir(&self, key: u64) -> PathBuf {
        self.root.join("cells").join(hex_id(key))
    }

    /// Path of a cell's in-progress checkpoint.
    pub fn checkpoint_path(&self, key: u64) -> PathBuf {
        self.cell_dir(key).join("ck.rtsnap")
    }

    /// Path of a cell's replay-digest log.
    pub fn digest_log_path(&self, key: u64) -> PathBuf {
        self.cell_dir(key).join("ck.digests")
    }

    /// Path of a cell's cached result.
    pub fn cell_result_path(&self, key: u64) -> PathBuf {
        self.cell_dir(key).join("result.json")
    }

    /// Journals a job's spec and state, atomically replacing any
    /// previous entry.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] if the atomic write fails.
    pub fn journal_job(
        &self,
        id: u64,
        spec: &JobSpec,
        state: JobState,
        error: Option<&str>,
    ) -> Result<(), StoreError> {
        let mut fields: BTreeMap<String, Json> = BTreeMap::new();
        fields.insert("v".into(), Json::num(1));
        fields.insert("spec".into(), spec.to_json());
        fields.insert("state".into(), Json::str(state.as_str()));
        if let Some(e) = error {
            fields.insert("error".into(), Json::str(e));
        }
        let mut line = Json::Obj(fields).encode();
        line.push('\n');
        let path = self.job_path(id);
        write_atomic(&path, line.as_bytes())
    }

    /// Loads every journaled job. Called once at daemon startup to
    /// rebuild the job table and re-enqueue interrupted work.
    ///
    /// # Errors
    ///
    /// [`StoreError::Corrupt`] on the first journal entry that fails to
    /// decode or whose filename disagrees with its spec digest;
    /// [`StoreError::Io`] on filesystem failures.
    pub fn load_jobs(&self) -> Result<Vec<JournaledJob>, StoreError> {
        let dir = self.root.join("jobs");
        let entries = fs::read_dir(&dir).map_err(|source| StoreError::Io {
            what: "list",
            path: dir.clone(),
            source,
        })?;
        let mut jobs = Vec::new();
        for entry in entries {
            let entry = entry.map_err(|source| StoreError::Io {
                what: "list",
                path: dir.clone(),
                source,
            })?;
            let path = entry.path();
            if path.extension().and_then(|e| e.to_str()) != Some("json") {
                continue;
            }
            jobs.push(self.load_job(&path)?);
        }
        // Deterministic order regardless of directory iteration order.
        jobs.sort_by_key(|j| j.id);
        Ok(jobs)
    }

    fn load_job(&self, path: &Path) -> Result<JournaledJob, StoreError> {
        let corrupt = |detail: String| StoreError::Corrupt {
            path: path.to_path_buf(),
            detail,
        };
        let id = path
            .file_stem()
            .and_then(|s| s.to_str())
            .and_then(parse_hex_id)
            .ok_or_else(|| corrupt("filename is not a hex job id".to_string()))?;
        let text = fs::read_to_string(path).map_err(|source| StoreError::Io {
            what: "read",
            path: path.to_path_buf(),
            source,
        })?;
        let v = Json::parse(text.trim_end()).map_err(|e| corrupt(e.to_string()))?;
        let spec_json = v
            .get("spec")
            .ok_or_else(|| corrupt("missing `spec`".to_string()))?;
        let spec = JobSpec::from_json(spec_json).map_err(|e: ProtocolError| corrupt(e.to_string()))?;
        if spec.identity() != id {
            return Err(corrupt(format!(
                "spec digest {} does not match filename",
                hex_id(spec.identity())
            )));
        }
        let state = v
            .get("state")
            .and_then(Json::as_str)
            .and_then(JobState::parse)
            .ok_or_else(|| corrupt("missing or unknown `state`".to_string()))?;
        Ok(JournaledJob {
            id,
            spec,
            state,
            error: v.get("error").and_then(Json::as_str).map(str::to_string),
        })
    }

    /// Reads a cell's cached result.
    ///
    /// Returns `Ok(None)` both when the cache entry is absent and when
    /// it is unreadable or corrupt — either way the cell must be
    /// recomputed, and the deterministic simulator makes recomputation
    /// equivalent to repair.
    pub fn read_cell_result(&self, key: u64) -> Option<CellResult> {
        let path = self.cell_result_path(key);
        let text = fs::read_to_string(path).ok()?;
        let v = Json::parse(text.trim_end()).ok()?;
        let cell = CellResult::from_json(&v).ok()?;
        // A cache entry filed under the wrong key is corruption, not a
        // hit.
        if cell.cell != key {
            return None;
        }
        Some(cell)
    }

    /// Atomically caches a cell's result and removes its now-redundant
    /// checkpoint.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] if the write fails.
    pub fn write_cell_result(&self, cell: &CellResult) -> Result<(), StoreError> {
        let dir = self.cell_dir(cell.cell);
        fs::create_dir_all(&dir).map_err(|source| StoreError::Io {
            what: "create directory",
            path: dir.clone(),
            source,
        })?;
        let mut line = cell.to_json().encode();
        line.push('\n');
        write_atomic(&self.cell_result_path(cell.cell), line.as_bytes())?;
        // The checkpoint only exists to resume an interrupted run; once
        // the result is cached it is dead weight.
        let _ = fs::remove_file(self.checkpoint_path(cell.cell));
        Ok(())
    }

    /// Ensures a cell's directory exists (the checkpoint writer needs
    /// the parent present).
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] if creation fails.
    pub fn ensure_cell_dir(&self, key: u64) -> Result<(), StoreError> {
        let dir = self.cell_dir(key);
        fs::create_dir_all(&dir).map_err(|source| StoreError::Io {
            what: "create directory",
            path: dir,
            source,
        })
    }
}

/// Atomic write-then-rename via the simulator's snapshot primitive,
/// mapped into store errors.
fn write_atomic(path: &Path, bytes: &[u8]) -> Result<(), StoreError> {
    treelet_rt::write_atomic(path, bytes).map_err(|e| StoreError::Io {
        what: "write",
        path: path.to_path_buf(),
        source: io::Error::other(e.to_string()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_store(tag: &str) -> ArtifactStore {
        let dir = std::env::temp_dir().join(format!("rt-served-store-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        ArtifactStore::open(dir).expect("open store")
    }

    fn spec() -> JobSpec {
        JobSpec {
            scenes: vec!["WKND".to_string()],
            ..JobSpec::default()
        }
    }

    #[test]
    fn journal_round_trips_and_updates_in_place() {
        let store = temp_store("journal");
        let spec = spec();
        let id = spec.identity();
        store.journal_job(id, &spec, JobState::Queued, None).unwrap();
        store
            .journal_job(id, &spec, JobState::Failed, Some("worker panicked"))
            .unwrap();

        let jobs = store.load_jobs().unwrap();
        assert_eq!(jobs.len(), 1);
        assert_eq!(jobs[0].id, id);
        assert_eq!(jobs[0].spec, spec);
        assert_eq!(jobs[0].state, JobState::Failed);
        assert_eq!(jobs[0].error.as_deref(), Some("worker panicked"));
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn corrupt_journal_is_a_typed_hard_error() {
        let store = temp_store("corrupt");
        let path = store.root().join("jobs").join("0x0000000000000001.json");
        fs::write(&path, b"{ this is not json").unwrap();
        match store.load_jobs() {
            Err(StoreError::Corrupt { path: p, .. }) => assert_eq!(p, path),
            other => panic!("expected Corrupt, got {other:?}"),
        }
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn journal_with_wrong_digest_is_corrupt() {
        let store = temp_store("wrong-digest");
        let spec = spec();
        // File the journal under an id that is not the spec's digest.
        store
            .journal_job(0xbad, &spec, JobState::Queued, None)
            .unwrap();
        assert!(matches!(
            store.load_jobs(),
            Err(StoreError::Corrupt { .. })
        ));
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn corrupt_cell_result_reads_as_a_miss() {
        let store = temp_store("cell");
        let cell = CellResult {
            cell: 7,
            scene: "CAR".to_string(),
            config: "prefetch".to_string(),
            cycles: 10,
            rays: 20,
            state_digest: 30,
        };
        store.write_cell_result(&cell).unwrap();
        assert_eq!(store.read_cell_result(7), Some(cell));
        assert_eq!(store.read_cell_result(8), None);

        fs::write(store.cell_result_path(7), b"torn!").unwrap();
        assert_eq!(store.read_cell_result(7), None, "corrupt entry = miss");
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn store_root_must_be_a_directory() {
        let path = std::env::temp_dir().join(format!("rt-served-not-a-dir-{}", std::process::id()));
        fs::write(&path, b"file").unwrap();
        assert!(matches!(
            ArtifactStore::open(&path),
            Err(StoreError::NotADirectory { .. })
        ));
        let _ = fs::remove_file(&path);
    }
}
