//! Deterministic fault injection ("chaos") for the service layer.
//!
//! PR 1 proved the *simulator* under seeded memory-fault injection; this
//! module applies the same discipline to the *daemon*. Everything
//! `rt-served` does to the outside world — filesystem writes in the
//! artifact store, bytes on a socket — goes through two narrow shims:
//!
//! - [`ServedFs`]: the store's filesystem verbs (read, atomic-write
//!   primitives, rename, remove, list, exclusive-create),
//! - [`ServedNet`]: connect/accept plus a wrapped stream type
//!   ([`ChaosStream`]) the server and client read and write through.
//!
//! In production both shims are passthroughs over `std::fs` /
//! `std::net` with one atomic op counter of overhead. Under a seeded
//! [`FaultPlan`] they inject the failures a long-lived daemon actually
//! meets: short writes, `ENOSPC`-style write errors, failed renames,
//! lost-fsync torn writes, connection resets mid-frame, partial reads,
//! and scheduling delays — all drawn from an `rt-rng` stream, so a
//! failing schedule is a *seed*, not a flake.
//!
//! The second mode is exhaustive rather than random: [`Chaos::crash_at`]
//! simulates a process death at the *k*-th store write point. Mutating
//! filesystem ops are numbered; op *k* dies mid-syscall (a write lands
//! only a prefix and is never synced, a rename never happens), and
//! every op after it — reads included, a dead process does no I/O —
//! fails. The crash-point harness in `tests/chaos.rs` enumerates every
//! write point of a daemon lifecycle this way and proves the restarted
//! daemon recovers with bit-identical digests (or the documented typed
//! error) at each one.
//!
//! Chaos is a test hook, selectable per process via `serve --chaos
//! <seed>` or the `RT_CHAOS` environment variable. With chaos off the
//! shims are proven zero-perturbation by digest-equality tests.

use rt_rng::{Rng, SmallRng};
use std::fmt;
use std::fs;
use std::io::{self, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Environment variable naming a chaos seed (`RT_CHAOS=42`). The CLI's
/// `--chaos` flag overrides it.
pub const CHAOS_ENV: &str = "RT_CHAOS";

/// The filesystem verbs the artifact store is allowed to use.
///
/// Deliberately narrow: every verb maps to one syscall-shaped operation
/// the chaos layer can count, perturb, or kill. The store's atomic
/// write-then-rename is composed from [`ServedFs::write_file`] (create +
/// write + fsync) and [`ServedFs::rename`], so a simulated crash can
/// land between them — exactly where a real one would.
pub trait ServedFs: Send + Sync + fmt::Debug {
    /// Reads a whole file.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;
    /// Creates (or truncates) `path`, writes all of `bytes`, and syncs.
    fn write_file(&self, path: &Path, bytes: &[u8]) -> io::Result<()>;
    /// Renames `from` over `to` (the commit half of an atomic write).
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;
    /// Removes a file; absent files are the caller's concern.
    fn remove_file(&self, path: &Path) -> io::Result<()>;
    /// Creates a directory and its parents.
    fn create_dir_all(&self, path: &Path) -> io::Result<()>;
    /// Lists a directory's entries as paths.
    fn read_dir(&self, path: &Path) -> io::Result<Vec<PathBuf>>;
    /// Creates `path` with `bytes` only if it does not already exist
    /// (`ErrorKind::AlreadyExists` otherwise) — the store-lock
    /// primitive.
    fn create_exclusive(&self, path: &Path, bytes: &[u8]) -> io::Result<()>;
}

/// Connect/accept shim; streams come back wrapped as [`ChaosStream`]s.
pub trait ServedNet: Send + Sync + fmt::Debug {
    /// Client-side connect.
    fn connect(&self, addr: &str) -> io::Result<ChaosStream>;
    /// Server-side wrap of a freshly accepted stream.
    fn wrap_accepted(&self, stream: TcpStream) -> ChaosStream;
}

/// The production filesystem: `std::fs`, nothing injected.
#[derive(Debug, Default, Clone, Copy)]
pub struct PassthroughFs;

impl ServedFs for PassthroughFs {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        fs::read(path)
    }

    fn write_file(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let mut f = fs::File::create(path)?;
        f.write_all(bytes)?;
        f.sync_all()
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        fs::rename(from, to)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        fs::remove_file(path)
    }

    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        fs::create_dir_all(path)
    }

    fn read_dir(&self, path: &Path) -> io::Result<Vec<PathBuf>> {
        let mut out = Vec::new();
        for entry in fs::read_dir(path)? {
            out.push(entry?.path());
        }
        Ok(out)
    }

    fn create_exclusive(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let mut f = fs::OpenOptions::new()
            .write(true)
            .create_new(true)
            .open(path)?;
        f.write_all(bytes)?;
        f.sync_all()
    }
}

/// The production network: `std::net`, nothing injected.
#[derive(Debug, Default, Clone, Copy)]
pub struct PassthroughNet;

impl ServedNet for PassthroughNet {
    fn connect(&self, addr: &str) -> io::Result<ChaosStream> {
        Ok(ChaosStream {
            inner: connect_tcp(addr)?,
            state: None,
        })
    }

    fn wrap_accepted(&self, stream: TcpStream) -> ChaosStream {
        ChaosStream {
            inner: stream,
            state: None,
        }
    }
}

fn connect_tcp(addr: &str) -> io::Result<TcpStream> {
    let mut last = None;
    for resolved in addr.to_socket_addrs()? {
        match TcpStream::connect(resolved) {
            Ok(stream) => return Ok(stream),
            Err(e) => last = Some(e),
        }
    }
    Err(last.unwrap_or_else(|| {
        io::Error::new(io::ErrorKind::InvalidInput, "address resolved to nothing")
    }))
}

/// A seeded schedule of injected faults.
///
/// Probabilities are per-operation; every draw comes from one xoshiro
/// stream, so a given `(seed, plan)` replays the same schedule for the
/// same operation sequence. `fault_budget` bounds the *total* number of
/// injected faults — once spent, the plan goes quiet — which guarantees
/// a retrying daemon converges instead of failing forever.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed for the fault stream.
    pub seed: u64,
    /// Total faults this plan may inject before going quiet.
    pub fault_budget: u64,
    /// P(write fails before any byte lands) — the `ENOSPC` shape.
    pub p_write_error: f64,
    /// P(write lands a prefix, then errors) — the short-write shape.
    pub p_short_write: f64,
    /// P(write reports success but only a prefix is durable) — the
    /// lost-fsync torn-write shape. Off by default: it manufactures
    /// corrupt artifacts on purpose, which only the torn-artifact tests
    /// want.
    pub p_torn_write: f64,
    /// P(rename fails, leaving the temp file uncommitted).
    pub p_rename_error: f64,
    /// P(read fails with an injected I/O error).
    pub p_read_error: f64,
    /// P(a socket read/write dies with `ConnectionReset`).
    pub p_net_reset: f64,
    /// P(a socket read/write transfers only part of the buffer).
    pub p_net_partial: f64,
    /// Upper bound on injected per-socket-op delay, milliseconds.
    pub max_delay_ms: u64,
}

impl FaultPlan {
    /// The default chaos-campaign mix for `--chaos <seed>` / `RT_CHAOS`:
    /// a bounded burst of recoverable store and socket faults that a
    /// correctly retrying daemon must ride out with bit-identical
    /// results.
    pub fn seeded(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            fault_budget: 16,
            p_write_error: 0.15,
            p_short_write: 0.1,
            p_torn_write: 0.0,
            p_rename_error: 0.1,
            p_read_error: 0.0,
            p_net_reset: 0.1,
            p_net_partial: 0.25,
            max_delay_ms: 5,
        }
    }

    /// A plan that injects nothing — chaos plumbing with zero faults,
    /// used to count I/O points for the crash harness.
    pub fn quiet(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            fault_budget: 0,
            p_write_error: 0.0,
            p_short_write: 0.0,
            p_torn_write: 0.0,
            p_rename_error: 0.0,
            p_read_error: 0.0,
            p_net_reset: 0.0,
            p_net_partial: 0.0,
            max_delay_ms: 0,
        }
    }
}

/// Which fault a draw selected for a filesystem write.
enum WriteFault {
    None,
    Error,
    Short,
    Torn,
}

/// Shared mutable chaos state: the fault stream, the op counters, and
/// the crash switch.
struct ChaosState {
    plan: FaultPlan,
    /// Crash-point mode: the index (in mutating-fs-op space) that dies.
    crash_at: Option<u64>,
    rng: Mutex<SmallRng>,
    /// Mutating fs ops seen so far — the crash-point index space.
    write_ops: AtomicU64,
    faults: AtomicU64,
    budget_left: AtomicU64,
    crashed: AtomicBool,
}

impl fmt::Debug for ChaosState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ChaosState")
            .field("plan", &self.plan)
            .field("crash_at", &self.crash_at)
            .field("write_ops", &self.write_ops.load(Ordering::SeqCst))
            .field("faults", &self.faults.load(Ordering::SeqCst))
            .field("crashed", &self.crashed.load(Ordering::SeqCst))
            .finish_non_exhaustive()
    }
}

/// The marker every injected error carries, so tests (and humans
/// reading daemon logs) can tell injected failures from real ones.
pub const INJECTED_MARKER: &str = "chaos:";

fn injected(detail: &str) -> io::Error {
    io::Error::other(format!("{INJECTED_MARKER} injected {detail}"))
}

fn crashed_error() -> io::Error {
    io::Error::other(format!("{INJECTED_MARKER} simulated crash (process is dead)"))
}

impl ChaosState {
    /// True (and spends budget) when a `p`-weighted fault fires.
    fn draw(&self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        let fired = {
            let mut rng = self.rng.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            rng.gen_bool(p)
        };
        if !fired {
            return false;
        }
        // Spend one unit of budget; exhausted budget suppresses the fault.
        let granted = self
            .budget_left
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |left| left.checked_sub(1))
            .is_ok();
        if granted {
            self.faults.fetch_add(1, Ordering::SeqCst);
        }
        granted
    }

    /// Numbers a mutating fs op and reports whether this op is the crash
    /// point (`Some(true)`), already past it (`Some(false)` means "fail,
    /// the process is dead"), or unaffected (`None`).
    fn next_write_op(&self) -> Option<bool> {
        let idx = self.write_ops.fetch_add(1, Ordering::SeqCst);
        let at = self.crash_at?;
        if self.crashed.load(Ordering::SeqCst) {
            return Some(false);
        }
        if idx == at {
            self.crashed.store(true, Ordering::SeqCst);
            return Some(true);
        }
        None
    }

    fn dead(&self) -> bool {
        self.crash_at.is_some() && self.crashed.load(Ordering::SeqCst)
    }

    /// A fraction of `len` (at least 0, at most `len - 1`) for torn and
    /// short writes.
    fn prefix_len(&self, len: usize) -> usize {
        if len <= 1 {
            return 0;
        }
        let mut rng = self.rng.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        rng.gen_range(0..len)
    }

    fn net_delay(&self) {
        if self.plan.max_delay_ms == 0 || self.dead() {
            return;
        }
        let ms = {
            let mut rng = self.rng.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            rng.gen_range(0..self.plan.max_delay_ms + 1)
        };
        if ms > 0 {
            std::thread::sleep(Duration::from_millis(ms));
        }
    }
}

/// Filesystem shim that injects the configured faults. Wraps
/// [`PassthroughFs`] for the real work.
#[derive(Debug)]
struct ChaosFs {
    state: Arc<ChaosState>,
}

impl ChaosFs {
    /// Pre-op gate shared by every verb: fails everything once the
    /// simulated process is dead.
    fn gate(&self) -> io::Result<()> {
        if self.state.dead() {
            Err(crashed_error())
        } else {
            Ok(())
        }
    }

    fn write_fault(&self) -> WriteFault {
        let plan = &self.state.plan;
        if self.state.draw(plan.p_write_error) {
            WriteFault::Error
        } else if self.state.draw(plan.p_short_write) {
            WriteFault::Short
        } else if self.state.draw(plan.p_torn_write) {
            WriteFault::Torn
        } else {
            WriteFault::None
        }
    }
}

impl ServedFs for ChaosFs {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        self.gate()?;
        if self.state.draw(self.state.plan.p_read_error) {
            return Err(injected("read error"));
        }
        PassthroughFs.read(path)
    }

    fn write_file(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        match self.state.next_write_op() {
            Some(true) => {
                // The crash lands mid-write: a prefix reaches the file,
                // no fsync, and the process never observes the result.
                let torn = self.state.prefix_len(bytes.len());
                let _ = fs::write(path, &bytes[..torn]);
                return Err(crashed_error());
            }
            Some(false) => return Err(crashed_error()),
            None => {}
        }
        match self.write_fault() {
            WriteFault::Error => Err(injected("write failure (disk full)")),
            WriteFault::Short => {
                let torn = self.state.prefix_len(bytes.len());
                let _ = fs::write(path, &bytes[..torn]);
                Err(injected("short write"))
            }
            WriteFault::Torn => {
                // The lost-fsync shape: the caller sees success, the
                // disk keeps only a prefix.
                let torn = self.state.prefix_len(bytes.len());
                fs::write(path, &bytes[..torn])
            }
            WriteFault::None => PassthroughFs.write_file(path, bytes),
        }
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        match self.state.next_write_op() {
            // A rename is atomic in the kernel; dying "during" one means
            // it simply never happened.
            Some(true) | Some(false) => return Err(crashed_error()),
            None => {}
        }
        if self.state.draw(self.state.plan.p_rename_error) {
            return Err(injected("rename failure"));
        }
        PassthroughFs.rename(from, to)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        match self.state.next_write_op() {
            Some(true) | Some(false) => return Err(crashed_error()),
            None => {}
        }
        PassthroughFs.remove_file(path)
    }

    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        match self.state.next_write_op() {
            Some(true) | Some(false) => return Err(crashed_error()),
            None => {}
        }
        if self.state.draw(self.state.plan.p_write_error) {
            return Err(injected("mkdir failure (disk full)"));
        }
        PassthroughFs.create_dir_all(path)
    }

    fn read_dir(&self, path: &Path) -> io::Result<Vec<PathBuf>> {
        self.gate()?;
        if self.state.draw(self.state.plan.p_read_error) {
            return Err(injected("directory listing error"));
        }
        PassthroughFs.read_dir(path)
    }

    fn create_exclusive(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        match self.state.next_write_op() {
            Some(true) | Some(false) => return Err(crashed_error()),
            None => {}
        }
        PassthroughFs.create_exclusive(path, bytes)
    }
}

/// Network shim that wraps streams with the shared fault state.
#[derive(Debug)]
struct ChaosNet {
    state: Arc<ChaosState>,
}

impl ServedNet for ChaosNet {
    fn connect(&self, addr: &str) -> io::Result<ChaosStream> {
        if self.state.dead() {
            return Err(crashed_error());
        }
        Ok(ChaosStream {
            inner: connect_tcp(addr)?,
            state: Some(Arc::clone(&self.state)),
        })
    }

    fn wrap_accepted(&self, stream: TcpStream) -> ChaosStream {
        ChaosStream {
            inner: stream,
            state: Some(Arc::clone(&self.state)),
        }
    }
}

/// A TCP stream that may lie: under a [`FaultPlan`] reads and writes
/// can stall briefly, transfer partial buffers, or die with
/// `ConnectionReset` mid-frame. With no plan it is exactly the inner
/// stream.
///
/// Partial transfers are *legal* `Read`/`Write` behavior that buffered
/// callers must already handle — injecting them aggressively is how the
/// frame reader's loop gets proven. Resets are errors the protocol
/// layer must surface as typed failures, never hangs or panics.
#[derive(Debug)]
pub struct ChaosStream {
    inner: TcpStream,
    state: Option<Arc<ChaosState>>,
}

impl ChaosStream {
    /// Bounds how long a read may block, like `TcpStream`'s.
    ///
    /// # Errors
    ///
    /// Whatever the OS reports for the underlying socket.
    pub fn set_read_timeout(&self, dur: Option<Duration>) -> io::Result<()> {
        self.inner.set_read_timeout(dur)
    }

    /// Bounds how long a write may block, like `TcpStream`'s — a
    /// stalled peer fails typed instead of pinning the thread.
    ///
    /// # Errors
    ///
    /// Whatever the OS reports for the underlying socket.
    pub fn set_write_timeout(&self, dur: Option<Duration>) -> io::Result<()> {
        self.inner.set_write_timeout(dur)
    }

    /// A second handle to the same socket (and the same fault stream),
    /// for splitting into reader and writer halves.
    ///
    /// # Errors
    ///
    /// Whatever the OS reports for duplicating the socket.
    pub fn try_clone(&self) -> io::Result<ChaosStream> {
        Ok(ChaosStream {
            inner: self.inner.try_clone()?,
            state: self.state.clone(),
        })
    }

    /// Pre-op fault draw shared by reads and writes. `Some(err)` aborts
    /// the op; otherwise returns the maximum bytes to transfer.
    fn disposition(&self, want: usize) -> Result<usize, io::Error> {
        let Some(state) = &self.state else {
            return Ok(want);
        };
        if state.dead() {
            return Err(io::Error::new(
                io::ErrorKind::ConnectionReset,
                format!("{INJECTED_MARKER} simulated crash (process is dead)"),
            ));
        }
        state.net_delay();
        if state.draw(state.plan.p_net_reset) {
            return Err(io::Error::new(
                io::ErrorKind::ConnectionReset,
                format!("{INJECTED_MARKER} injected connection reset"),
            ));
        }
        if want > 1 && state.draw(state.plan.p_net_partial) {
            return Ok(1 + state.prefix_len(want - 1));
        }
        Ok(want)
    }
}

impl Read for ChaosStream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let cap = self.disposition(buf.len())?;
        self.inner.read(&mut buf[..cap])
    }
}

impl Write for ChaosStream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let cap = self.disposition(buf.len())?;
        self.inner.write(&buf[..cap])
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

/// Handle threading one chaos configuration through a store, a
/// supervisor, a server, and/or a client. Cloning shares the same fault
/// stream and counters.
#[derive(Debug, Clone)]
pub struct Chaos {
    state: Option<Arc<ChaosState>>,
}

impl Chaos {
    /// Production mode: passthrough shims, nothing counted, nothing
    /// injected.
    pub fn off() -> Chaos {
        Chaos { state: None }
    }

    /// The default chaos-campaign plan for `seed`
    /// ([`FaultPlan::seeded`]).
    pub fn seeded(seed: u64) -> Chaos {
        Chaos::with_plan(FaultPlan::seeded(seed))
    }

    /// Chaos under an explicit plan.
    pub fn with_plan(plan: FaultPlan) -> Chaos {
        Chaos::build(plan, None)
    }

    /// Fault-free chaos plumbing that still numbers store write points —
    /// the counting pass of the crash harness.
    pub fn counting() -> Chaos {
        Chaos::with_plan(FaultPlan::quiet(0))
    }

    /// Crash-point mode: the `point`-th mutating store operation dies
    /// mid-syscall and every operation after it fails, as if the
    /// process had been killed at that instant.
    pub fn crash_at(point: u64) -> Chaos {
        Chaos::build(FaultPlan::quiet(0), Some(point))
    }

    fn build(plan: FaultPlan, crash_at: Option<u64>) -> Chaos {
        let budget = plan.fault_budget;
        let seed = plan.seed;
        Chaos {
            state: Some(Arc::new(ChaosState {
                plan,
                crash_at,
                rng: Mutex::new(SmallRng::seed_from_u64(seed)),
                write_ops: AtomicU64::new(0),
                faults: AtomicU64::new(0),
                budget_left: AtomicU64::new(budget),
                crashed: AtomicBool::new(false),
            })),
        }
    }

    /// Chaos from the `RT_CHAOS` environment variable: absent means
    /// [`Chaos::off`], a decimal or `0x`-hex seed means
    /// [`Chaos::seeded`].
    ///
    /// # Errors
    ///
    /// A human-readable complaint when the variable is set but not a
    /// seed — a silently ignored chaos request would be worse than a
    /// refused one.
    pub fn from_env() -> Result<Chaos, String> {
        match std::env::var(CHAOS_ENV) {
            Err(_) => Ok(Chaos::off()),
            Ok(raw) => {
                let text = raw.trim();
                let parsed = match text.strip_prefix("0x") {
                    Some(hex) => u64::from_str_radix(hex, 16),
                    None => text.parse(),
                };
                parsed.map(Chaos::seeded).map_err(|_| {
                    format!("{CHAOS_ENV}={raw:?} is not a seed (expected a u64, e.g. 42 or 0x2a)")
                })
            }
        }
    }

    /// Whether any chaos (plan or crash point) is configured.
    pub fn is_active(&self) -> bool {
        self.state.is_some()
    }

    /// The filesystem shim for this configuration.
    pub fn fs(&self) -> Arc<dyn ServedFs> {
        match &self.state {
            None => Arc::new(PassthroughFs),
            Some(state) => Arc::new(ChaosFs {
                state: Arc::clone(state),
            }),
        }
    }

    /// The network shim for this configuration.
    pub fn net(&self) -> Arc<dyn ServedNet> {
        match &self.state {
            None => Arc::new(PassthroughNet),
            Some(state) => Arc::new(ChaosNet {
                state: Arc::clone(state),
            }),
        }
    }

    /// Mutating store operations observed so far — the crash-point
    /// index space the harness enumerates.
    pub fn write_points(&self) -> u64 {
        self.state
            .as_ref()
            .map_or(0, |s| s.write_ops.load(Ordering::SeqCst))
    }

    /// Faults injected so far (crash deaths not included).
    pub fn faults_injected(&self) -> u64 {
        self.state
            .as_ref()
            .map_or(0, |s| s.faults.load(Ordering::SeqCst))
    }

    /// Whether the configured crash point has fired.
    pub fn crashed(&self) -> bool {
        self.state.as_ref().is_some_and(|s| s.crashed.load(Ordering::SeqCst))
    }

    /// The configured seed, when a plan is active.
    pub fn seed(&self) -> Option<u64> {
        self.state.as_ref().map(|s| s.plan.seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("rt-served-chaos-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn passthrough_round_trips_and_counts_nothing() {
        let dir = temp_dir("passthrough");
        let chaos = Chaos::off();
        let shim = chaos.fs();
        let path = dir.join("x.txt");
        shim.write_file(&path, b"hello").unwrap();
        assert_eq!(shim.read(&path).unwrap(), b"hello");
        let moved = dir.join("y.txt");
        shim.rename(&path, &moved).unwrap();
        assert_eq!(shim.read(&moved).unwrap(), b"hello");
        assert_eq!(shim.read_dir(&dir).unwrap(), vec![moved.clone()]);
        shim.remove_file(&moved).unwrap();
        assert_eq!(chaos.write_points(), 0);
        assert_eq!(chaos.faults_injected(), 0);
        assert!(!chaos.is_active());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn counting_mode_numbers_mutating_ops_only() {
        let dir = temp_dir("counting");
        let chaos = Chaos::counting();
        let shim = chaos.fs();
        let path = dir.join("x.txt");
        shim.write_file(&path, b"data").unwrap(); // op 0
        let _ = shim.read(&path).unwrap(); // reads are not write points
        shim.rename(&path, &dir.join("y.txt")).unwrap(); // op 1
        shim.create_dir_all(&dir.join("sub")).unwrap(); // op 2
        let _ = shim.read_dir(&dir).unwrap();
        assert_eq!(chaos.write_points(), 3);
        assert_eq!(chaos.faults_injected(), 0, "quiet plan injects nothing");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn crash_point_kills_the_op_and_everything_after() {
        let dir = temp_dir("crash");
        let chaos = Chaos::crash_at(1);
        let shim = chaos.fs();
        let a = dir.join("a.tmp");
        shim.write_file(&a, b"aaaa").unwrap(); // op 0: survives
        assert!(!chaos.crashed());

        // Op 1 is the rename: it must never land, and the error must be
        // marked as injected.
        let e = shim.rename(&a, &dir.join("a.txt")).unwrap_err();
        assert!(e.to_string().contains(INJECTED_MARKER), "{e}");
        assert!(chaos.crashed());
        assert!(!dir.join("a.txt").exists(), "a dead rename must not commit");

        // The process is dead: reads and writes all fail now.
        assert!(shim.read(&a).is_err());
        assert!(shim.write_file(&dir.join("b"), b"b").is_err());
        assert!(shim.read_dir(&dir).is_err());
        assert!(shim.create_dir_all(&dir.join("c")).is_err());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn crash_mid_write_leaves_a_strict_prefix_and_no_more() {
        let dir = temp_dir("torn");
        let chaos = Chaos::crash_at(0);
        let shim = chaos.fs();
        let path = dir.join("t.tmp");
        let bytes = vec![7u8; 4096];
        assert!(shim.write_file(&path, &bytes).is_err());
        let on_disk = fs::read(&path).unwrap_or_default();
        assert!(on_disk.len() < bytes.len(), "crash write must not complete");
        assert!(bytes.starts_with(&on_disk), "what landed is a prefix");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn seeded_plans_replay_identically_and_respect_the_budget() {
        let schedule = |seed: u64| -> (Vec<bool>, u64) {
            let chaos = Chaos::with_plan(FaultPlan {
                p_write_error: 0.5,
                fault_budget: 4,
                ..FaultPlan::seeded(seed)
            });
            let dir = temp_dir(&format!("replay-{seed}"));
            let shim = chaos.fs();
            let outcomes = (0..64)
                .map(|i| shim.write_file(&dir.join(format!("{i}.txt")), b"x").is_err())
                .collect();
            let _ = fs::remove_dir_all(&dir);
            (outcomes, chaos.faults_injected())
        };
        let (a, faults_a) = schedule(11);
        let (b, faults_b) = schedule(11);
        let (c, _) = schedule(12);
        assert_eq!(a, b, "same seed, same schedule");
        assert_ne!(a, c, "different seed, different schedule");
        assert_eq!(faults_a, 4, "budget caps total injected faults");
        assert_eq!(faults_a, faults_b);
        assert!(
            a.iter().skip_while(|&&failed| !failed).count() > 0,
            "the plan actually injected something"
        );
        let _: u64 = faults_b;
    }

    #[test]
    fn short_and_torn_writes_leave_prefixes() {
        let dir = temp_dir("short");
        // p = 1.0 for short writes: every write errors but leaves a
        // prefix on disk.
        let chaos = Chaos::with_plan(FaultPlan {
            p_short_write: 1.0,
            fault_budget: 1,
            ..FaultPlan::quiet(3)
        });
        let shim = chaos.fs();
        let path = dir.join("s.txt");
        let bytes = vec![9u8; 1024];
        let e = shim.write_file(&path, &bytes).unwrap_err();
        assert!(e.to_string().contains("short write"), "{e}");
        assert!(fs::read(&path).unwrap_or_default().len() < bytes.len());

        // Budget spent: the next write is clean.
        shim.write_file(&path, &bytes).unwrap();
        assert_eq!(fs::read(&path).unwrap(), bytes);

        // Torn writes report success with a prefix on disk.
        let torn = Chaos::with_plan(FaultPlan {
            p_torn_write: 1.0,
            fault_budget: 1,
            ..FaultPlan::quiet(4)
        });
        let tshim = torn.fs();
        let tpath = dir.join("t.txt");
        tshim.write_file(&tpath, &bytes).unwrap();
        assert!(
            fs::read(&tpath).unwrap().len() < bytes.len(),
            "torn write lies about durability"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn from_env_parses_seeds_and_rejects_garbage() {
        // Env mutation: tests in this binary run in threads of one
        // process, so pick a name no other test reads. Serialize by
        // doing all cases in one test.
        std::env::remove_var(CHAOS_ENV);
        assert!(!Chaos::from_env().unwrap().is_active());
        std::env::set_var(CHAOS_ENV, "42");
        let chaos = Chaos::from_env().unwrap();
        assert_eq!(chaos.seed(), Some(42));
        std::env::set_var(CHAOS_ENV, "0x2a");
        assert_eq!(Chaos::from_env().unwrap().seed(), Some(42));
        std::env::set_var(CHAOS_ENV, "not-a-seed");
        let err = Chaos::from_env().unwrap_err();
        assert!(err.contains("RT_CHAOS"), "{err}");
        std::env::remove_var(CHAOS_ENV);
    }

    #[test]
    fn exclusive_create_refuses_existing_files() {
        let dir = temp_dir("excl");
        let shim = Chaos::off().fs();
        let path = dir.join("LOCK");
        shim.create_exclusive(&path, b"pid=1\n").unwrap();
        let e = shim.create_exclusive(&path, b"pid=2\n").unwrap_err();
        assert_eq!(e.kind(), io::ErrorKind::AlreadyExists);
        assert_eq!(shim.read(&path).unwrap(), b"pid=1\n");
        let _ = fs::remove_dir_all(&dir);
    }
}
