//! The daemon's newline-delimited JSON wire protocol.
//!
//! One request per line, one response per line, UTF-8, `\n`-terminated.
//! Frames are capped at [`MAX_FRAME_BYTES`]; anything longer is a typed
//! [`ProtocolError::Oversized`], not an allocation bomb. Every decode
//! failure is a typed error — malformed input can never panic the
//! server (the protocol fuzz test enforces this).
//!
//! 64-bit identifiers (job ids, cell keys, state digests) travel as
//! `0x`-prefixed hex strings because JSON numbers are `f64` and would
//! silently round them.

use crate::json::{Json, JsonError};
use std::collections::BTreeMap;
use std::fmt;
use std::io::BufRead;

/// Hard cap on one wire frame (request or response line), newline
/// included. A submit for the full 16-scene suite is under 1 KiB, so
/// 64 KiB leaves two orders of magnitude of headroom.
pub const MAX_FRAME_BYTES: usize = 64 * 1024;

/// Protocol version spoken by this build.
pub const PROTOCOL_VERSION: u64 = 1;

/// Why a frame failed to decode.
#[derive(Debug)]
pub enum ProtocolError {
    /// The line exceeded [`MAX_FRAME_BYTES`] before a newline arrived.
    Oversized { len: usize, max: usize },
    /// The stream ended mid-frame (bytes after the last newline).
    Truncated,
    /// The line was not valid JSON.
    Garbage(JsonError),
    /// The frame parsed but was not a JSON object.
    NotAnObject,
    /// The frame advertised an unsupported protocol version.
    UnsupportedVersion { found: u64 },
    /// A required field was absent.
    MissingField { field: &'static str },
    /// A field was present but of the wrong shape.
    BadField { field: &'static str, expected: &'static str },
    /// An unrecognized `cmd` value.
    UnknownCommand { found: String },
    /// An unrecognized reply shape from a server.
    UnknownReply { found: String },
    /// Socket-level failure while reading a frame.
    Io(std::io::Error),
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::Oversized { len, max } => {
                write!(f, "frame of {len}+ bytes exceeds the {max}-byte cap")
            }
            ProtocolError::Truncated => write!(f, "stream ended mid-frame"),
            ProtocolError::Garbage(e) => write!(f, "frame is not valid JSON: {e}"),
            ProtocolError::NotAnObject => write!(f, "frame is not a JSON object"),
            ProtocolError::UnsupportedVersion { found } => {
                write!(f, "unsupported protocol version {found} (this build speaks {PROTOCOL_VERSION})")
            }
            ProtocolError::MissingField { field } => write!(f, "missing field `{field}`"),
            ProtocolError::BadField { field, expected } => {
                write!(f, "field `{field}` must be {expected}")
            }
            ProtocolError::UnknownCommand { found } => write!(f, "unknown command `{found}`"),
            ProtocolError::UnknownReply { found } => write!(f, "unknown reply shape: {found}"),
            ProtocolError::Io(e) => write!(f, "socket error: {e}"),
        }
    }
}

impl std::error::Error for ProtocolError {}

impl From<JsonError> for ProtocolError {
    fn from(e: JsonError) -> Self {
        ProtocolError::Garbage(e)
    }
}

/// Formats a 64-bit identifier the way the protocol carries it.
pub fn hex_id(id: u64) -> String {
    format!("{id:#018x}")
}

/// Parses a `0x`-prefixed hex identifier.
pub fn parse_hex_id(s: &str) -> Option<u64> {
    let digits = s.strip_prefix("0x")?;
    if digits.is_empty() || digits.len() > 16 {
        return None;
    }
    u64::from_str_radix(digits, 16).ok()
}

/// Reads one newline-terminated frame.
///
/// Returns `Ok(None)` on clean EOF at a frame boundary. Enforces the
/// size cap incrementally, so an endless unterminated line costs a
/// bounded buffer, not memory proportional to the attack.
///
/// # Errors
///
/// [`ProtocolError::Oversized`], [`ProtocolError::Truncated`], or
/// [`ProtocolError::Io`].
pub fn read_frame(reader: &mut impl BufRead) -> Result<Option<String>, ProtocolError> {
    let mut line = Vec::new();
    loop {
        let buf = match reader.fill_buf() {
            Ok(buf) => buf,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(ProtocolError::Io(e)),
        };
        if buf.is_empty() {
            return if line.is_empty() {
                Ok(None)
            } else {
                Err(ProtocolError::Truncated)
            };
        }
        let (chunk, done) = match buf.iter().position(|&b| b == b'\n') {
            Some(nl) => (&buf[..nl], true),
            None => (buf, false),
        };
        if line.len() + chunk.len() > MAX_FRAME_BYTES {
            let len = line.len() + chunk.len();
            let consumed = chunk.len() + usize::from(done);
            reader.consume(consumed);
            return Err(ProtocolError::Oversized {
                len,
                max: MAX_FRAME_BYTES,
            });
        }
        line.extend_from_slice(chunk);
        let consumed = chunk.len() + usize::from(done);
        reader.consume(consumed);
        if done {
            let text = String::from_utf8(line).map_err(|e| {
                ProtocolError::Garbage(JsonError::Unexpected {
                    at: e.utf8_error().valid_up_to(),
                    found: "invalid UTF-8".to_string(),
                })
            })?;
            return Ok(Some(text));
        }
    }
}

/// Lifecycle of a job, as reported over the wire and in the journal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    Queued,
    Running,
    Done,
    Failed,
    TimedOut,
}

impl JobState {
    /// The wire/journal spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed => "failed",
            JobState::TimedOut => "timed-out",
        }
    }

    /// Inverse of [`JobState::as_str`].
    pub fn parse(s: &str) -> Option<JobState> {
        Some(match s {
            "queued" => JobState::Queued,
            "running" => JobState::Running,
            "done" => JobState::Done,
            "failed" => JobState::Failed,
            "timed-out" => JobState::TimedOut,
            _ => return None,
        })
    }

    /// Whether the state is final (no further transitions).
    pub fn is_terminal(self) -> bool {
        matches!(self, JobState::Done | JobState::Failed | JobState::TimedOut)
    }
}

impl fmt::Display for JobState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A sweep request: the cross product of `scenes` × `configs`, each
/// cell simulated at the given detail/resolution/workload.
///
/// Scene, config, and workload names are carried as strings and
/// validated by the supervisor against the simulator's registries, so
/// the protocol layer stays decoupled from the simulator.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Scene names (e.g. `"CAR"`); must be non-empty.
    pub scenes: Vec<String>,
    /// Config names (`baseline` | `traversal` | `prefetch`).
    pub configs: Vec<String>,
    /// Scene tessellation detail (positive, finite).
    pub detail: f32,
    /// Workload image resolution (res × res rays).
    pub res: u32,
    /// Workload kind (`primary` | `diffuse` | `shadow`).
    pub workload: String,
    /// Treelet capacity in bytes.
    pub treelet_bytes: u64,
    /// Optional cycle budget override.
    pub max_cycles: Option<u64>,
    /// Optional per-job wall-clock budget override, milliseconds.
    pub timeout_ms: Option<u64>,
    /// Cycles between checkpoints while a cell runs.
    pub checkpoint_every: u64,
}

impl Default for JobSpec {
    fn default() -> Self {
        JobSpec {
            scenes: Vec::new(),
            configs: vec!["prefetch".to_string()],
            detail: 0.1,
            res: 16,
            workload: "primary".to_string(),
            treelet_bytes: 512,
            max_cycles: None,
            timeout_ms: None,
            checkpoint_every: 5_000,
        }
    }
}

impl JobSpec {
    /// Content digest identifying this job's *results*.
    ///
    /// Budget knobs (`timeout_ms`, `max_cycles`, `checkpoint_every`) are
    /// deliberately excluded: they bound how long we are willing to
    /// compute, not what the deterministic simulator computes, so a
    /// resubmit with a different budget must hit the same cache entries.
    pub fn identity(&self) -> u64 {
        rt_gpu_sim::fnv1a64(self.identity_string().as_bytes())
    }

    /// Content digest for one (scene, config) cell of this job.
    pub fn cell_identity(&self, scene: &str, config: &str) -> u64 {
        let tail = format!("|cell|{scene}|{config}");
        rt_gpu_sim::fnv1a64((self.identity_string() + &tail).as_bytes())
    }

    fn identity_string(&self) -> String {
        format!(
            "rt-served-job-v1|scenes={}|configs={}|detail={}|res={}|workload={}|treelet_bytes={}",
            self.scenes.join(","),
            self.configs.join(","),
            self.detail,
            self.res,
            self.workload,
            self.treelet_bytes,
        )
    }

    /// The (scene, config) cells, scene-major, in deterministic order.
    pub fn cells(&self) -> Vec<(String, String)> {
        let mut out = Vec::with_capacity(self.scenes.len() * self.configs.len());
        for scene in &self.scenes {
            for config in &self.configs {
                out.push((scene.clone(), config.clone()));
            }
        }
        out
    }

    /// Encodes as a JSON object (the `spec` field of submit frames and
    /// journal entries).
    pub fn to_json(&self) -> Json {
        let mut fields: BTreeMap<String, Json> = BTreeMap::new();
        fields.insert(
            "scenes".into(),
            Json::Arr(self.scenes.iter().map(Json::str).collect()),
        );
        fields.insert(
            "configs".into(),
            Json::Arr(self.configs.iter().map(Json::str).collect()),
        );
        fields.insert("detail".into(), Json::Num(f64::from(self.detail)));
        fields.insert("res".into(), Json::num(u64::from(self.res)));
        fields.insert("workload".into(), Json::str(&self.workload));
        fields.insert("treelet_bytes".into(), Json::num(self.treelet_bytes));
        if let Some(mc) = self.max_cycles {
            fields.insert("max_cycles".into(), Json::num(mc));
        }
        if let Some(t) = self.timeout_ms {
            fields.insert("timeout_ms".into(), Json::num(t));
        }
        fields.insert("checkpoint_every".into(), Json::num(self.checkpoint_every));
        Json::Obj(fields)
    }

    /// Decodes from the JSON object produced by [`JobSpec::to_json`].
    ///
    /// # Errors
    ///
    /// Typed [`ProtocolError`]s for missing or ill-shaped fields. Value
    /// validation (are the scene names real?) is the supervisor's job.
    pub fn from_json(v: &Json) -> Result<JobSpec, ProtocolError> {
        if !matches!(v, Json::Obj(_)) {
            return Err(ProtocolError::BadField {
                field: "spec",
                expected: "an object",
            });
        }
        let mut spec = JobSpec {
            scenes: string_array(v, "scenes")?,
            ..JobSpec::default()
        };
        if let Some(configs) = v.get("configs") {
            spec.configs = array_of_strings("configs", configs)?;
        }
        if let Some(d) = v.get("detail") {
            spec.detail = d.as_f64().ok_or(ProtocolError::BadField {
                field: "detail",
                expected: "a number",
            })? as f32;
        }
        if let Some(r) = v.get("res") {
            let r = r.as_u64().ok_or(ProtocolError::BadField {
                field: "res",
                expected: "a non-negative integer",
            })?;
            spec.res = u32::try_from(r).map_err(|_| ProtocolError::BadField {
                field: "res",
                expected: "an integer below 2^32",
            })?;
        }
        if let Some(w) = v.get("workload") {
            spec.workload = w
                .as_str()
                .ok_or(ProtocolError::BadField {
                    field: "workload",
                    expected: "a string",
                })?
                .to_string();
        }
        if let Some(t) = v.get("treelet_bytes") {
            spec.treelet_bytes = t.as_u64().ok_or(ProtocolError::BadField {
                field: "treelet_bytes",
                expected: "a non-negative integer",
            })?;
        }
        if let Some(mc) = v.get("max_cycles") {
            spec.max_cycles = Some(mc.as_u64().ok_or(ProtocolError::BadField {
                field: "max_cycles",
                expected: "a non-negative integer",
            })?);
        }
        if let Some(t) = v.get("timeout_ms") {
            spec.timeout_ms = Some(t.as_u64().ok_or(ProtocolError::BadField {
                field: "timeout_ms",
                expected: "a non-negative integer",
            })?);
        }
        if let Some(c) = v.get("checkpoint_every") {
            spec.checkpoint_every = c.as_u64().ok_or(ProtocolError::BadField {
                field: "checkpoint_every",
                expected: "a non-negative integer",
            })?;
        }
        Ok(spec)
    }
}

fn string_array(v: &Json, field: &'static str) -> Result<Vec<String>, ProtocolError> {
    let arr = v.get(field).ok_or(ProtocolError::MissingField { field })?;
    array_of_strings(field, arr)
}

fn array_of_strings(field: &'static str, v: &Json) -> Result<Vec<String>, ProtocolError> {
    let items = v.as_arr().ok_or(ProtocolError::BadField {
        field,
        expected: "an array of strings",
    })?;
    items
        .iter()
        .map(|item| {
            item.as_str()
                .map(str::to_string)
                .ok_or(ProtocolError::BadField {
                    field,
                    expected: "an array of strings",
                })
        })
        .collect()
}

/// One completed (scene, config) simulation, as cached and served.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellResult {
    /// Content-address of this cell.
    pub cell: u64,
    /// Scene name.
    pub scene: String,
    /// Config name.
    pub config: String,
    /// Cycles to retire every ray.
    pub cycles: u64,
    /// Rays simulated.
    pub rays: u64,
    /// The deterministic end-of-run state digest.
    pub state_digest: u64,
}

impl CellResult {
    /// Encodes as a JSON object.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("cell", Json::str(hex_id(self.cell))),
            ("scene", Json::str(&self.scene)),
            ("config", Json::str(&self.config)),
            ("cycles", Json::num(self.cycles)),
            ("rays", Json::num(self.rays)),
            ("state_digest", Json::str(hex_id(self.state_digest))),
        ])
    }

    /// Decodes from the object produced by [`CellResult::to_json`].
    ///
    /// # Errors
    ///
    /// Typed [`ProtocolError`]s for missing or ill-shaped fields.
    pub fn from_json(v: &Json) -> Result<CellResult, ProtocolError> {
        Ok(CellResult {
            cell: hex_field(v, "cell")?,
            scene: str_field(v, "scene")?,
            config: str_field(v, "config")?,
            cycles: u64_field(v, "cycles")?,
            rays: u64_field(v, "rays")?,
            state_digest: hex_field(v, "state_digest")?,
        })
    }
}

fn str_field(v: &Json, field: &'static str) -> Result<String, ProtocolError> {
    v.get(field)
        .ok_or(ProtocolError::MissingField { field })?
        .as_str()
        .map(str::to_string)
        .ok_or(ProtocolError::BadField {
            field,
            expected: "a string",
        })
}

fn u64_field(v: &Json, field: &'static str) -> Result<u64, ProtocolError> {
    v.get(field)
        .ok_or(ProtocolError::MissingField { field })?
        .as_u64()
        .ok_or(ProtocolError::BadField {
            field,
            expected: "a non-negative integer",
        })
}

fn hex_field(v: &Json, field: &'static str) -> Result<u64, ProtocolError> {
    let s = v
        .get(field)
        .ok_or(ProtocolError::MissingField { field })?
        .as_str()
        .ok_or(ProtocolError::BadField {
            field,
            expected: "a 0x-prefixed hex string",
        })?;
    parse_hex_id(s).ok_or(ProtocolError::BadField {
        field,
        expected: "a 0x-prefixed hex string",
    })
}

/// A job's externally visible status.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobStatus {
    /// Job id (content-address of the spec).
    pub job: u64,
    /// Current lifecycle state.
    pub state: JobState,
    /// Cells in the job.
    pub cells_total: u64,
    /// Cells with cached results.
    pub cells_done: u64,
    /// Error description for `failed` / `timed-out` jobs.
    pub error: Option<String>,
    /// Whether the job was served entirely from cache at submit time.
    pub cached: bool,
}

impl JobStatus {
    fn to_json(&self) -> Json {
        let mut fields: BTreeMap<String, Json> = BTreeMap::new();
        fields.insert("job".into(), Json::str(hex_id(self.job)));
        fields.insert("state".into(), Json::str(self.state.as_str()));
        fields.insert("cells_total".into(), Json::num(self.cells_total));
        fields.insert("cells_done".into(), Json::num(self.cells_done));
        if let Some(e) = &self.error {
            fields.insert("error".into(), Json::str(e));
        }
        fields.insert("cached".into(), Json::Bool(self.cached));
        Json::Obj(fields)
    }

    fn from_json(v: &Json) -> Result<JobStatus, ProtocolError> {
        let state_name = str_field(v, "state")?;
        let state = JobState::parse(&state_name).ok_or(ProtocolError::BadField {
            field: "state",
            expected: "a job state name",
        })?;
        Ok(JobStatus {
            job: hex_field(v, "job")?,
            state,
            cells_total: u64_field(v, "cells_total")?,
            cells_done: u64_field(v, "cells_done")?,
            error: v.get("error").and_then(Json::as_str).map(str::to_string),
            cached: v.get("cached").and_then(Json::as_bool).unwrap_or(false),
        })
    }
}

/// A client→server frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// Enqueue (or cache-hit) a sweep.
    Submit(JobSpec),
    /// Query a job's status by id.
    Status { job: u64 },
    /// Fetch a completed job's cell results.
    Result { job: u64 },
    /// Ask the daemon to shut down cleanly.
    Shutdown,
}

impl Request {
    /// Encodes to one wire line (no trailing newline).
    pub fn encode(&self) -> String {
        let v = match self {
            Request::Ping => Json::obj([
                ("v", Json::num(PROTOCOL_VERSION)),
                ("cmd", Json::str("ping")),
            ]),
            Request::Submit(spec) => Json::obj([
                ("v", Json::num(PROTOCOL_VERSION)),
                ("cmd", Json::str("submit")),
                ("spec", spec.to_json()),
            ]),
            Request::Status { job } => Json::obj([
                ("v", Json::num(PROTOCOL_VERSION)),
                ("cmd", Json::str("status")),
                ("job", Json::str(hex_id(*job))),
            ]),
            Request::Result { job } => Json::obj([
                ("v", Json::num(PROTOCOL_VERSION)),
                ("cmd", Json::str("result")),
                ("job", Json::str(hex_id(*job))),
            ]),
            Request::Shutdown => Json::obj([
                ("v", Json::num(PROTOCOL_VERSION)),
                ("cmd", Json::str("shutdown")),
            ]),
        };
        v.encode()
    }

    /// Decodes one wire line.
    ///
    /// # Errors
    ///
    /// Typed [`ProtocolError`]s; never panics, whatever the line holds.
    pub fn decode(line: &str) -> Result<Request, ProtocolError> {
        let v = Json::parse(line)?;
        if !matches!(v, Json::Obj(_)) {
            return Err(ProtocolError::NotAnObject);
        }
        let version = v
            .get("v")
            .ok_or(ProtocolError::MissingField { field: "v" })?
            .as_u64()
            .ok_or(ProtocolError::BadField {
                field: "v",
                expected: "a protocol version number",
            })?;
        if version != PROTOCOL_VERSION {
            return Err(ProtocolError::UnsupportedVersion { found: version });
        }
        let cmd = v
            .get("cmd")
            .ok_or(ProtocolError::MissingField { field: "cmd" })?
            .as_str()
            .ok_or(ProtocolError::BadField {
                field: "cmd",
                expected: "a command name",
            })?;
        match cmd {
            "ping" => Ok(Request::Ping),
            "submit" => {
                let spec = v
                    .get("spec")
                    .ok_or(ProtocolError::MissingField { field: "spec" })?;
                Ok(Request::Submit(JobSpec::from_json(spec)?))
            }
            "status" => Ok(Request::Status {
                job: hex_field(&v, "job")?,
            }),
            "result" => Ok(Request::Result {
                job: hex_field(&v, "job")?,
            }),
            "shutdown" => Ok(Request::Shutdown),
            other => Err(ProtocolError::UnknownCommand {
                found: other.to_string(),
            }),
        }
    }
}

/// Failure classes a server can report in an error reply. `Busy` is the
/// load-shedding signal: the queue is full and the client should back
/// off and resubmit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorKind {
    /// Queue full — retry later.
    Busy,
    /// The request was well-formed JSON but semantically invalid.
    Invalid,
    /// No job with that id.
    UnknownJob,
    /// The job exists but is not `done`, so results are unavailable.
    NotDone,
    /// The frame failed protocol decoding.
    Protocol,
    /// Internal server failure.
    Internal,
}

impl ErrorKind {
    /// The wire spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorKind::Busy => "busy",
            ErrorKind::Invalid => "invalid",
            ErrorKind::UnknownJob => "unknown-job",
            ErrorKind::NotDone => "not-done",
            ErrorKind::Protocol => "protocol",
            ErrorKind::Internal => "internal",
        }
    }

    /// Inverse of [`ErrorKind::as_str`].
    pub fn parse(s: &str) -> Option<ErrorKind> {
        Some(match s {
            "busy" => ErrorKind::Busy,
            "invalid" => ErrorKind::Invalid,
            "unknown-job" => ErrorKind::UnknownJob,
            "not-done" => ErrorKind::NotDone,
            "protocol" => ErrorKind::Protocol,
            "internal" => ErrorKind::Internal,
            _ => return None,
        })
    }
}

impl fmt::Display for ErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A server→client frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Reply to `ping`.
    Pong,
    /// Reply to `submit`: the job's id and current status (which is the
    /// full answer immediately when the submit was a cache hit).
    Submitted(JobStatus),
    /// Reply to `status`.
    Status(JobStatus),
    /// Reply to `result`: one row per cell.
    Rows(Vec<CellResult>),
    /// Reply to `shutdown`: acknowledged, daemon is exiting.
    ShuttingDown,
    /// Typed failure reply.
    Error { kind: ErrorKind, message: String },
}

impl Response {
    /// Encodes to one wire line (no trailing newline).
    pub fn encode(&self) -> String {
        let v = match self {
            Response::Pong => ok_reply(Json::obj([("pong", Json::Bool(true))])),
            Response::Submitted(status) => ok_reply(status.to_json()),
            Response::Status(status) => ok_reply(status.to_json()),
            Response::Rows(rows) => ok_reply(Json::obj([(
                "rows",
                Json::Arr(rows.iter().map(CellResult::to_json).collect()),
            )])),
            Response::ShuttingDown => ok_reply(Json::obj([("shutdown", Json::Bool(true))])),
            Response::Error { kind, message } => Json::obj([
                ("ok", Json::Bool(false)),
                ("error", Json::str(kind.as_str())),
                ("message", Json::str(message)),
            ]),
        };
        v.encode()
    }

    /// Decodes one wire line.
    ///
    /// The submit/status distinction does not survive the wire (both
    /// carry a status object); decoding yields [`Response::Status`] for
    /// either, which is all clients need.
    ///
    /// # Errors
    ///
    /// Typed [`ProtocolError`]s; never panics, whatever the line holds.
    pub fn decode(line: &str) -> Result<Response, ProtocolError> {
        let v = Json::parse(line)?;
        if !matches!(v, Json::Obj(_)) {
            return Err(ProtocolError::NotAnObject);
        }
        let ok = v
            .get("ok")
            .ok_or(ProtocolError::MissingField { field: "ok" })?
            .as_bool()
            .ok_or(ProtocolError::BadField {
                field: "ok",
                expected: "a boolean",
            })?;
        if !ok {
            let kind_name = str_field(&v, "error")?;
            let kind = ErrorKind::parse(&kind_name).ok_or(ProtocolError::BadField {
                field: "error",
                expected: "an error kind name",
            })?;
            return Ok(Response::Error {
                kind,
                message: v
                    .get("message")
                    .and_then(Json::as_str)
                    .unwrap_or_default()
                    .to_string(),
            });
        }
        let reply = v
            .get("reply")
            .ok_or(ProtocolError::MissingField { field: "reply" })?;
        if reply.get("pong").is_some() {
            return Ok(Response::Pong);
        }
        if reply.get("shutdown").is_some() {
            return Ok(Response::ShuttingDown);
        }
        if let Some(rows) = reply.get("rows") {
            let rows = rows.as_arr().ok_or(ProtocolError::BadField {
                field: "rows",
                expected: "an array",
            })?;
            return Ok(Response::Rows(
                rows.iter()
                    .map(CellResult::from_json)
                    .collect::<Result<_, _>>()?,
            ));
        }
        if reply.get("job").is_some() {
            return Ok(Response::Status(JobStatus::from_json(reply)?));
        }
        Err(ProtocolError::UnknownReply {
            found: reply.encode(),
        })
    }
}

fn ok_reply(reply: Json) -> Json {
    Json::obj([("ok", Json::Bool(true)), ("reply", reply)])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> JobSpec {
        JobSpec {
            scenes: vec!["WKND".to_string(), "CAR".to_string()],
            configs: vec!["baseline".to_string(), "prefetch".to_string()],
            detail: 0.25,
            res: 8,
            workload: "diffuse".to_string(),
            treelet_bytes: 1024,
            max_cycles: Some(1_000_000),
            timeout_ms: Some(30_000),
            checkpoint_every: 2_000,
        }
    }

    #[test]
    fn requests_round_trip() {
        let cases = [
            Request::Ping,
            Request::Submit(spec()),
            Request::Status { job: 0xdead_beef },
            Request::Result { job: u64::MAX },
            Request::Shutdown,
        ];
        for req in cases {
            let line = req.encode();
            assert!(!line.contains('\n'), "one frame per line: {line}");
            assert_eq!(Request::decode(&line).unwrap(), req, "{line}");
        }
    }

    #[test]
    fn responses_round_trip() {
        let status = JobStatus {
            job: 0x0123_4567_89ab_cdef,
            state: JobState::Running,
            cells_total: 4,
            cells_done: 1,
            error: None,
            cached: false,
        };
        let row = CellResult {
            cell: 42,
            scene: "CAR".to_string(),
            config: "prefetch".to_string(),
            cycles: 50_985,
            rays: 65_536,
            state_digest: 0xfe9f_734f_03cd_6a14,
        };
        let cases = [
            (Response::Pong, Response::Pong),
            (
                Response::Submitted(status.clone()),
                Response::Status(status.clone()),
            ),
            (
                Response::Status(status.clone()),
                Response::Status(status.clone()),
            ),
            (
                Response::Rows(vec![row.clone()]),
                Response::Rows(vec![row]),
            ),
            (Response::ShuttingDown, Response::ShuttingDown),
            (
                Response::Error {
                    kind: ErrorKind::Busy,
                    message: "queue full".to_string(),
                },
                Response::Error {
                    kind: ErrorKind::Busy,
                    message: "queue full".to_string(),
                },
            ),
        ];
        for (sent, expect) in cases {
            let line = sent.encode();
            assert_eq!(Response::decode(&line).unwrap(), expect, "{line}");
        }
    }

    #[test]
    fn identity_ignores_budget_knobs() {
        let a = spec();
        let mut b = spec();
        b.timeout_ms = Some(1);
        b.max_cycles = None;
        b.checkpoint_every = 77;
        assert_eq!(a.identity(), b.identity());

        let mut c = spec();
        c.treelet_bytes = 2048;
        assert_ne!(a.identity(), c.identity());
    }

    #[test]
    fn cell_identity_distinguishes_cells() {
        let s = spec();
        let mut keys: Vec<u64> = s
            .cells()
            .iter()
            .map(|(scene, config)| s.cell_identity(scene, config))
            .collect();
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys.len(), 4, "4 distinct cells hash to 4 distinct keys");
    }

    #[test]
    fn hex_ids_round_trip() {
        for id in [0u64, 1, 0xdead_beef, u64::MAX] {
            assert_eq!(parse_hex_id(&hex_id(id)), Some(id));
        }
        assert_eq!(parse_hex_id("0x"), None);
        assert_eq!(parse_hex_id("123"), None);
        assert_eq!(parse_hex_id("0x1_2"), None);
        assert_eq!(parse_hex_id("0x11223344556677889"), None);
    }

    #[test]
    fn read_frame_caps_unterminated_lines() {
        let huge = vec![b'a'; MAX_FRAME_BYTES + 1000];
        let mut reader = std::io::BufReader::new(&huge[..]);
        match read_frame(&mut reader) {
            Err(ProtocolError::Oversized { max, .. }) => assert_eq!(max, MAX_FRAME_BYTES),
            other => panic!("expected Oversized, got {other:?}"),
        }
    }

    #[test]
    fn read_frame_reports_truncation_and_clean_eof() {
        let mut reader = std::io::BufReader::new(&b"{\"v\":1}\n"[..]);
        assert_eq!(read_frame(&mut reader).unwrap(), Some("{\"v\":1}".to_string()));
        assert_eq!(read_frame(&mut reader).unwrap(), None);

        let mut reader = std::io::BufReader::new(&b"{\"v\":1"[..]);
        assert!(matches!(
            read_frame(&mut reader),
            Err(ProtocolError::Truncated)
        ));
    }
}
