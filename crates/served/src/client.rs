//! A small blocking client for the daemon's protocol.
//!
//! One connection per request keeps the client stateless and immune to
//! server-side connection churn; at sweep-submission rates the extra
//! TCP handshakes are noise.

use crate::chaos::{Chaos, ServedNet};
use crate::protocol::{
    read_frame, ErrorKind, JobStatus, ProtocolError, Request, Response,
};
use std::fmt;
use std::io::{BufReader, Write};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// Could not reach the daemon.
    Connect {
        addr: String,
        source: std::io::Error,
    },
    /// Socket-level failure mid-exchange.
    Io(std::io::Error),
    /// The server's reply did not decode.
    Protocol(ProtocolError),
    /// The server answered with a typed error frame.
    Server { kind: ErrorKind, message: String },
    /// The server closed the connection without replying.
    NoReply,
    /// A wait loop outlived its budget.
    WaitTimedOut { waited_ms: u64 },
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Connect { addr, source } => {
                write!(f, "cannot connect to {addr}: {source}")
            }
            ClientError::Io(e) => write!(f, "socket error: {e}"),
            ClientError::Protocol(e) => write!(f, "bad reply: {e}"),
            ClientError::Server { kind, message } => write!(f, "server says {kind}: {message}"),
            ClientError::NoReply => write!(f, "server closed the connection without replying"),
            ClientError::WaitTimedOut { waited_ms } => {
                write!(f, "job still not finished after {waited_ms} ms")
            }
        }
    }
}

impl std::error::Error for ClientError {}

/// Handle to a daemon address.
pub struct Client {
    addr: String,
    net: Arc<dyn ServedNet>,
}

impl Client {
    /// A client for the daemon at `addr` (e.g. `127.0.0.1:7777`).
    pub fn new(addr: impl Into<String>) -> Client {
        Client::with_chaos(addr, &Chaos::off())
    }

    /// A client whose socket I/O goes through `chaos` — for fault
    /// campaigns against the client side of the protocol.
    pub fn with_chaos(addr: impl Into<String>, chaos: &Chaos) -> Client {
        Client {
            addr: addr.into(),
            net: chaos.net(),
        }
    }

    /// The daemon address this client talks to.
    #[must_use]
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Sends one request and decodes one response.
    ///
    /// # Errors
    ///
    /// Any [`ClientError`]. A typed server error frame is surfaced as
    /// [`ClientError::Server`], not an `Ok` response.
    pub fn call(&self, request: &Request) -> Result<Response, ClientError> {
        let stream = self.net.connect(&self.addr).map_err(|source| ClientError::Connect {
            addr: self.addr.clone(),
            source,
        })?;
        // Bound both directions: a daemon that stops answering (reads)
        // or stops draining (writes) must fail typed, not hang the
        // caller.
        let _ = stream.set_read_timeout(Some(Duration::from_secs(30)));
        let _ = stream.set_write_timeout(Some(Duration::from_secs(30)));
        let mut writer = stream.try_clone().map_err(ClientError::Io)?;
        let mut line = request.encode();
        line.push('\n');
        writer.write_all(line.as_bytes()).map_err(ClientError::Io)?;
        writer.flush().map_err(ClientError::Io)?;

        let mut reader = BufReader::new(stream);
        let reply = match read_frame(&mut reader) {
            Ok(Some(reply)) => reply,
            Ok(None) => return Err(ClientError::NoReply),
            Err(ProtocolError::Io(e)) => return Err(ClientError::Io(e)),
            Err(e) => return Err(ClientError::Protocol(e)),
        };
        match Response::decode(&reply).map_err(ClientError::Protocol)? {
            Response::Error { kind, message } => Err(ClientError::Server { kind, message }),
            response => Ok(response),
        }
    }

    /// Liveness probe.
    ///
    /// # Errors
    ///
    /// [`ClientError`] if the daemon is unreachable or answers oddly.
    pub fn ping(&self) -> Result<(), ClientError> {
        match self.call(&Request::Ping)? {
            Response::Pong => Ok(()),
            other => Err(unexpected(other)),
        }
    }

    /// Submits a job; the returned status carries the job id (and is
    /// already `done` with `cached: true` on a full cache hit).
    ///
    /// # Errors
    ///
    /// [`ClientError::Server`] with [`ErrorKind::Busy`] when the daemon
    /// sheds load, [`ErrorKind::Invalid`] for bad specs, plus transport
    /// failures.
    pub fn submit(&self, spec: crate::protocol::JobSpec) -> Result<JobStatus, ClientError> {
        match self.call(&Request::Submit(spec))? {
            Response::Status(status) | Response::Submitted(status) => Ok(status),
            other => Err(unexpected(other)),
        }
    }

    /// Queries a job's status.
    ///
    /// # Errors
    ///
    /// [`ClientError::Server`] with [`ErrorKind::UnknownJob`] for
    /// unknown ids, plus transport failures.
    pub fn status(&self, job: u64) -> Result<JobStatus, ClientError> {
        match self.call(&Request::Status { job })? {
            Response::Status(status) | Response::Submitted(status) => Ok(status),
            other => Err(unexpected(other)),
        }
    }

    /// Fetches a done job's cell results.
    ///
    /// # Errors
    ///
    /// [`ClientError::Server`] with [`ErrorKind::NotDone`] while the
    /// job is still running, plus transport failures.
    pub fn result(&self, job: u64) -> Result<Vec<crate::protocol::CellResult>, ClientError> {
        match self.call(&Request::Result { job })? {
            Response::Rows(rows) => Ok(rows),
            other => Err(unexpected(other)),
        }
    }

    /// Asks the daemon to shut down cleanly.
    ///
    /// # Errors
    ///
    /// Transport failures; success means the daemon acknowledged.
    pub fn shutdown(&self) -> Result<(), ClientError> {
        match self.call(&Request::Shutdown)? {
            Response::ShuttingDown => Ok(()),
            other => Err(unexpected(other)),
        }
    }

    /// Polls `status` every `poll` until the job reaches a terminal
    /// state or `budget` elapses.
    ///
    /// # Errors
    ///
    /// [`ClientError::WaitTimedOut`] when the budget expires; otherwise
    /// whatever `status` fails with.
    pub fn wait(
        &self,
        job: u64,
        poll: Duration,
        budget: Duration,
    ) -> Result<JobStatus, ClientError> {
        let start = Instant::now();
        loop {
            let status = self.status(job)?;
            if status.state.is_terminal() {
                return Ok(status);
            }
            if start.elapsed() >= budget {
                return Err(ClientError::WaitTimedOut {
                    waited_ms: start.elapsed().as_millis() as u64,
                });
            }
            std::thread::sleep(poll);
        }
    }
}

fn unexpected(response: Response) -> ClientError {
    ClientError::Protocol(ProtocolError::UnknownReply {
        found: response.encode(),
    })
}
