//! Minimal hand-rolled JSON value, parser, and encoder.
//!
//! The workspace is dependency-free by policy, and the daemon's wire
//! protocol and on-disk journals are line-delimited JSON, so this module
//! provides the one JSON implementation the service layer needs: a
//! recursive-descent parser with an explicit depth cap (adversarial
//! input must exhaust a typed error path, never the stack) and an
//! encoder that round-trips everything the parser accepts.
//!
//! Numbers are `f64` — large 64-bit identifiers (job ids, state
//! digests) are therefore carried as hex *strings* at the protocol
//! layer, never as JSON numbers.

use std::collections::BTreeMap;
use std::fmt;

/// Maximum nesting depth the parser will follow before bailing with
/// [`JsonError::TooDeep`]. The protocol never nests past ~4 levels;
/// anything deeper is garbage or an attack.
pub const MAX_DEPTH: usize = 32;

/// A parsed JSON value.
///
/// Objects preserve deterministic (sorted) key order via `BTreeMap`, so
/// encoding is canonical: two structurally equal values encode to
/// byte-identical strings. The content-addressed store relies on this.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(BTreeMap<String, Json>),
}

/// Why a parse failed. Every variant names the byte offset so protocol
/// tests can assert errors are detected, not papered over.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JsonError {
    /// Input ended in the middle of a value.
    Truncated,
    /// An unexpected byte at `at` (printable form in `found`).
    Unexpected { at: usize, found: String },
    /// A malformed `\` escape inside a string.
    BadEscape { at: usize },
    /// A number that does not parse as a finite `f64`.
    BadNumber { at: usize },
    /// Nesting exceeded [`MAX_DEPTH`].
    TooDeep { max: usize },
    /// A complete value followed by non-whitespace trailing bytes.
    TrailingBytes { at: usize },
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JsonError::Truncated => write!(f, "input truncated mid-value"),
            JsonError::Unexpected { at, found } => {
                write!(f, "unexpected {found} at byte {at}")
            }
            JsonError::BadEscape { at } => write!(f, "bad string escape at byte {at}"),
            JsonError::BadNumber { at } => write!(f, "malformed number at byte {at}"),
            JsonError::TooDeep { max } => write!(f, "nesting deeper than {max} levels"),
            JsonError::TrailingBytes { at } => {
                write!(f, "trailing bytes after value at byte {at}")
            }
        }
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Parses one complete JSON value from `input`, rejecting trailing
    /// non-whitespace.
    ///
    /// # Errors
    ///
    /// Any [`JsonError`]; never panics, whatever the input.
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            at: 0,
        };
        p.skip_ws();
        let value = p.value(0)?;
        p.skip_ws();
        if p.at < p.bytes.len() {
            return Err(JsonError::TrailingBytes { at: p.at });
        }
        Ok(value)
    }

    /// Encodes to a single-line JSON string (no newlines — suitable as
    /// one wire frame or journal line).
    pub fn encode(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_number(*n, out),
            Json::Str(s) => write_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(key, out);
                    out.push(':');
                    value.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Object field lookup; `None` for non-objects or missing keys.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.get(key),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as an exact non-negative integer. Rejects
    /// negatives, fractions, and magnitudes past 2^53 (where `f64`
    /// stops being exact).
    pub fn as_u64(&self) -> Option<u64> {
        let n = self.as_f64()?;
        if (0.0..=9_007_199_254_740_992.0).contains(&n) && n.fract() == 0.0 {
            Some(n as u64)
        } else {
            None
        }
    }

    /// The array payload, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Convenience constructor for object literals.
    pub fn obj(fields: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Convenience constructor for string values.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Convenience constructor for numbers from unsigned integers.
    pub fn num(n: u64) -> Json {
        Json::Num(n as f64)
    }
}

fn write_number(n: f64, out: &mut String) {
    use std::fmt::Write as _;
    if n.fract() == 0.0 && n.abs() < 9.0e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_string(s: &str, out: &mut String) {
    use std::fmt::Write as _;
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.at) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.at += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.at).copied()
    }

    fn unexpected(&self) -> JsonError {
        match self.peek() {
            None => JsonError::Truncated,
            Some(b) => JsonError::Unexpected {
                at: self.at,
                found: printable(b),
            },
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(JsonError::TooDeep { max: MAX_DEPTH });
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            _ => Err(self.unexpected()),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        let end = self.at + word.len();
        if self.bytes.len() < end {
            return Err(JsonError::Truncated);
        }
        if &self.bytes[self.at..end] == word.as_bytes() {
            self.at = end;
            Ok(value)
        } else {
            Err(self.unexpected())
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.at;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E' => self.at += 1,
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.at])
            .map_err(|_| JsonError::BadNumber { at: start })?;
        match text.parse::<f64>() {
            Ok(n) if n.is_finite() => Ok(Json::Num(n)),
            _ => Err(JsonError::BadNumber { at: start }),
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.at += 1; // opening quote
        let mut out = String::new();
        loop {
            let start = self.at;
            match self.peek() {
                None => return Err(JsonError::Truncated),
                Some(b'"') => {
                    self.at += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.at += 1;
                    match self.peek() {
                        None => return Err(JsonError::Truncated),
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.at += 1;
                            let c = self.unicode_escape(start)?;
                            out.push(c);
                            continue;
                        }
                        Some(_) => return Err(JsonError::BadEscape { at: start }),
                    }
                    self.at += 1;
                }
                Some(b) if b < 0x20 => {
                    return Err(JsonError::Unexpected {
                        at: self.at,
                        found: printable(b),
                    })
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is &str, so the
                    // byte stream is valid UTF-8 by construction).
                    let rest = &self.bytes[self.at..];
                    let s = std::str::from_utf8(rest).expect("parser input is a &str");
                    let c = s.chars().next().expect("peek saw a byte");
                    out.push(c);
                    self.at += c.len_utf8();
                }
            }
        }
    }

    /// Parses the 4 hex digits after `\u`, pairing surrogates.
    fn unicode_escape(&mut self, escape_start: usize) -> Result<char, JsonError> {
        let hi = self.hex4(escape_start)?;
        if (0xD800..0xDC00).contains(&hi) {
            // High surrogate: require a following \uXXXX low surrogate.
            if self.bytes.get(self.at) == Some(&b'\\') && self.bytes.get(self.at + 1) == Some(&b'u')
            {
                self.at += 2;
                let lo = self.hex4(escape_start)?;
                if (0xDC00..0xE000).contains(&lo) {
                    let c = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                    return char::from_u32(c).ok_or(JsonError::BadEscape { at: escape_start });
                }
            }
            return Err(JsonError::BadEscape { at: escape_start });
        }
        char::from_u32(hi).ok_or(JsonError::BadEscape { at: escape_start })
    }

    fn hex4(&mut self, escape_start: usize) -> Result<u32, JsonError> {
        if self.bytes.len() < self.at + 4 {
            return Err(JsonError::Truncated);
        }
        let mut value = 0u32;
        for _ in 0..4 {
            let b = self.bytes[self.at];
            let digit = match b {
                b'0'..=b'9' => (b - b'0') as u32,
                b'a'..=b'f' => (b - b'a' + 10) as u32,
                b'A'..=b'F' => (b - b'A' + 10) as u32,
                _ => return Err(JsonError::BadEscape { at: escape_start }),
            };
            value = value * 16 + digit;
            self.at += 1;
        }
        Ok(value)
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.at += 1; // '['
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.at += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b']') => {
                    self.at += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.unexpected()),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.at += 1; // '{'
        let mut fields = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.at += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            if self.peek() != Some(b'"') {
                return Err(self.unexpected());
            }
            let key = self.string()?;
            self.skip_ws();
            if self.peek() != Some(b':') {
                return Err(self.unexpected());
            }
            self.at += 1;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            fields.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b'}') => {
                    self.at += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.unexpected()),
            }
        }
    }
}

fn printable(b: u8) -> String {
    if b.is_ascii_graphic() {
        format!("`{}`", b as char)
    } else {
        format!("byte 0x{b:02x}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_structured_values() {
        let cases = [
            "null",
            "true",
            "false",
            "0",
            "-17",
            "3.5",
            "\"hello\"",
            "\"quote \\\" slash \\\\ tab \\t\"",
            "[]",
            "[1,2,3]",
            "{}",
            "{\"a\":1,\"b\":[true,null],\"c\":{\"d\":\"e\"}}",
        ];
        for case in cases {
            let v = Json::parse(case).unwrap_or_else(|e| panic!("{case}: {e}"));
            let encoded = v.encode();
            assert_eq!(Json::parse(&encoded).unwrap(), v, "re-parse of {case}");
        }
    }

    #[test]
    fn canonical_encoding_sorts_object_keys() {
        let a = Json::parse("{\"z\":1,\"a\":2}").unwrap();
        let b = Json::parse("{\"a\":2,\"z\":1}").unwrap();
        assert_eq!(a.encode(), b.encode());
        assert_eq!(a.encode(), "{\"a\":2,\"z\":1}");
    }

    #[test]
    fn rejects_garbage_with_typed_errors() {
        assert_eq!(Json::parse(""), Err(JsonError::Truncated));
        assert_eq!(Json::parse("{\"a\":"), Err(JsonError::Truncated));
        assert_eq!(Json::parse("\"unterminated"), Err(JsonError::Truncated));
        assert!(matches!(
            Json::parse("nul"),
            Err(JsonError::Truncated | JsonError::Unexpected { .. })
        ));
        assert!(matches!(
            Json::parse("{]"),
            Err(JsonError::Unexpected { .. })
        ));
        assert!(matches!(
            Json::parse("1 2"),
            Err(JsonError::TrailingBytes { .. })
        ));
        assert!(matches!(Json::parse("1e999"), Err(JsonError::BadNumber { .. })));
        assert!(matches!(
            Json::parse("\"\\q\""),
            Err(JsonError::BadEscape { .. })
        ));
    }

    #[test]
    fn depth_cap_is_a_typed_error_not_a_stack_overflow() {
        let deep = "[".repeat(10_000) + &"]".repeat(10_000);
        assert_eq!(Json::parse(&deep), Err(JsonError::TooDeep { max: MAX_DEPTH }));
    }

    #[test]
    fn unicode_escapes_including_surrogate_pairs() {
        assert_eq!(
            Json::parse("\"\\u0041\\ud83d\\ude00\"").unwrap(),
            Json::Str("A😀".to_string())
        );
        assert!(matches!(
            Json::parse("\"\\ud83d\""),
            Err(JsonError::BadEscape { .. })
        ));
    }

    #[test]
    fn u64_accessor_rejects_lossy_numbers() {
        assert_eq!(Json::Num(42.0).as_u64(), Some(42));
        assert_eq!(Json::Num(-1.0).as_u64(), None);
        assert_eq!(Json::Num(0.5).as_u64(), None);
        assert_eq!(Json::Num(1.0e19).as_u64(), None);
    }
}
