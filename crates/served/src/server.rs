//! The TCP front end: accept loop, per-connection protocol handling,
//! and shutdown plumbing.
//!
//! The listener runs nonblocking and polls two stop signals between
//! accepts: an internal flag set by a client `shutdown` request, and an
//! optional external flag an OS signal handler flips (the CLI installs
//! a SIGTERM/SIGINT handler pointing here). Either way the supervisor
//! is drained and [`Server::run`] returns a typed [`ShutdownReason`]
//! so the caller can pick the right exit code.

use crate::chaos::{Chaos, ChaosStream, ServedNet};
use crate::protocol::{
    read_frame, ErrorKind, ProtocolError, Request, Response,
};
use crate::store::{ArtifactStore, StoreError};
use crate::supervisor::{
    ResultError, SubmitRejection, Supervisor, SupervisorConfig,
};
use std::fmt;
use std::io::{BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

/// Why the daemon could not start or crashed.
#[derive(Debug)]
pub enum ServeError {
    /// The listen address could not be bound.
    Bind {
        addr: String,
        source: std::io::Error,
    },
    /// The artifact store is unusable (exit code 8 territory).
    Store(StoreError),
    /// Listener-level I/O failure after startup.
    Io(std::io::Error),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Bind { addr, source } => write!(f, "cannot bind {addr}: {source}"),
            ServeError::Store(e) => write!(f, "{e}"),
            ServeError::Io(e) => write!(f, "listener error: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<StoreError> for ServeError {
    fn from(e: StoreError) -> Self {
        ServeError::Store(e)
    }
}

/// How a clean shutdown was requested.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShutdownReason {
    /// A client sent the `shutdown` command.
    Requested,
    /// The external signal flag was raised (SIGTERM/SIGINT).
    Signal,
}

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Listen address, e.g. `127.0.0.1:7777`. Port 0 picks a free port
    /// (see [`Server::local_addr`]).
    pub addr: String,
    /// Artifact store root.
    pub store_dir: std::path::PathBuf,
    /// Supervisor tuning.
    pub supervisor: SupervisorConfig,
    /// External stop flag, typically flipped by an OS signal handler.
    pub signal_flag: Option<&'static AtomicBool>,
    /// Fault injection for the store and every accepted connection —
    /// [`Chaos::off`] in production.
    pub chaos: Chaos,
}

/// A bound, not-yet-running daemon.
pub struct Server {
    listener: TcpListener,
    addr: SocketAddr,
    supervisor: Arc<Supervisor>,
    shutdown_requested: Arc<AtomicBool>,
    signal_flag: Option<&'static AtomicBool>,
    net: Arc<dyn ServedNet>,
}

impl Server {
    /// Binds the listener, opens the store, and starts the supervisor
    /// (which re-enqueues any journaled interrupted jobs).
    ///
    /// # Errors
    ///
    /// [`ServeError::Bind`] when the address is unusable and
    /// [`ServeError::Store`] when the store is corrupt or unwritable.
    pub fn bind(config: ServerConfig) -> Result<Server, ServeError> {
        let listener = TcpListener::bind(&config.addr).map_err(|source| ServeError::Bind {
            addr: config.addr.clone(),
            source,
        })?;
        let addr = listener.local_addr().map_err(ServeError::Io)?;
        let store = ArtifactStore::open_with_fs(&config.store_dir, config.chaos.fs())?;
        let supervisor = Arc::new(Supervisor::start(store, config.supervisor)?);
        Ok(Server {
            listener,
            addr,
            supervisor,
            shutdown_requested: Arc::new(AtomicBool::new(false)),
            signal_flag: config.signal_flag,
            net: config.chaos.net(),
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Serves until shutdown is requested, then drains the supervisor.
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] if the listener itself fails.
    pub fn run(self) -> Result<ShutdownReason, ServeError> {
        self.listener.set_nonblocking(true).map_err(ServeError::Io)?;
        let reason = loop {
            if let Some(flag) = self.signal_flag {
                if flag.load(Ordering::SeqCst) {
                    break ShutdownReason::Signal;
                }
            }
            if self.shutdown_requested.load(Ordering::SeqCst) {
                break ShutdownReason::Requested;
            }
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    let supervisor = Arc::clone(&self.supervisor);
                    let shutdown = Arc::clone(&self.shutdown_requested);
                    let stream = self.net.wrap_accepted(stream);
                    thread::spawn(move || handle_connection(stream, &supervisor, &shutdown));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    thread::sleep(Duration::from_millis(25));
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(ServeError::Io(e)),
            }
        };
        self.supervisor.shutdown();
        Ok(reason)
    }
}

/// Speaks the protocol over one connection until EOF, a fatal protocol
/// error, or a shutdown command. All failures become typed wire
/// errors; nothing a client sends can panic this thread.
fn handle_connection(stream: ChaosStream, supervisor: &Supervisor, shutdown: &AtomicBool) {
    // Bound both directions so a peer that goes silent (reads) or stops
    // draining its receive buffer (writes) cannot pin this thread
    // forever.
    let _ = stream.set_read_timeout(Some(Duration::from_secs(30)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(30)));
    let reader = match stream.try_clone() {
        Ok(clone) => clone,
        Err(_) => return,
    };
    let mut reader = BufReader::new(reader);
    let mut writer = BufWriter::new(stream);

    loop {
        let line = match read_frame(&mut reader) {
            Ok(Some(line)) => line,
            Ok(None) => return, // clean EOF
            Err(e) => {
                // Report the decode failure, then drop the connection:
                // after oversize/garbage the stream position is
                // untrustworthy.
                let _ = send(
                    &mut writer,
                    &Response::Error {
                        kind: ErrorKind::Protocol,
                        message: e.to_string(),
                    },
                );
                return;
            }
        };
        if line.trim().is_empty() {
            continue;
        }
        let response = match Request::decode(&line) {
            Ok(request) => {
                let is_shutdown = request == Request::Shutdown;
                let response = dispatch(request, supervisor);
                if is_shutdown {
                    let _ = send(&mut writer, &response);
                    shutdown.store(true, Ordering::SeqCst);
                    return;
                }
                response
            }
            Err(e) => Response::Error {
                kind: ErrorKind::Protocol,
                message: e.to_string(),
            },
        };
        if send(&mut writer, &response).is_err() {
            return;
        }
    }
}

fn send(writer: &mut impl Write, response: &Response) -> std::io::Result<()> {
    let mut line = response.encode();
    line.push('\n');
    writer.write_all(line.as_bytes())?;
    writer.flush()
}

fn dispatch(request: Request, supervisor: &Supervisor) -> Response {
    match request {
        Request::Ping => Response::Pong,
        Request::Shutdown => Response::ShuttingDown,
        Request::Submit(spec) => match supervisor.submit(spec) {
            Ok(status) => Response::Submitted(status),
            Err(SubmitRejection::Busy { queue_cap }) => Response::Error {
                kind: ErrorKind::Busy,
                message: format!("queue full ({queue_cap} jobs); retry later"),
            },
            Err(SubmitRejection::Invalid { message }) => Response::Error {
                kind: ErrorKind::Invalid,
                message,
            },
            Err(SubmitRejection::Store(e)) => Response::Error {
                kind: ErrorKind::Internal,
                message: e.to_string(),
            },
        },
        Request::Status { job } => match supervisor.status(job) {
            Some(status) => Response::Status(status),
            None => Response::Error {
                kind: ErrorKind::UnknownJob,
                message: format!("no job {}", crate::protocol::hex_id(job)),
            },
        },
        Request::Result { job } => match supervisor.result(job) {
            Ok(rows) => Response::Rows(rows),
            Err(ResultError::UnknownJob) => Response::Error {
                kind: ErrorKind::UnknownJob,
                message: format!("no job {}", crate::protocol::hex_id(job)),
            },
            Err(ResultError::NotDone { state, error }) => Response::Error {
                kind: ErrorKind::NotDone,
                message: match error {
                    Some(e) => format!("job is {state}: {e}"),
                    None => format!("job is {state}"),
                },
            },
            Err(ResultError::MissingCell { cell }) => Response::Error {
                kind: ErrorKind::Internal,
                message: format!(
                    "cell {} of a done job is missing from the store",
                    crate::protocol::hex_id(cell)
                ),
            },
        },
    }
}

/// A `ProtocolError` mapped to the wire for reuse by the CLI.
pub fn protocol_error_response(e: &ProtocolError) -> Response {
    Response::Error {
        kind: ErrorKind::Protocol,
        message: e.to_string(),
    }
}
