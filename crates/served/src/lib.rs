//! `rt-served` — a crash-tolerant sweep daemon for the treelet
//! prefetching simulator.
//!
//! The simulator is deterministic and sweeps are expensive, which makes
//! them perfect memoization targets: a sweep's outputs are a pure
//! function of its spec. This crate wraps the simulator in a
//! long-running service that exploits that:
//!
//! - **Wire protocol** ([`protocol`]): newline-delimited JSON over TCP,
//!   hand-rolled (the workspace is dependency-free by policy), with
//!   typed decode errors and a hard frame-size cap — malformed or
//!   hostile input can never panic the daemon.
//! - **Content-addressed store** ([`store`]): job journals and per-cell
//!   results live under digests of the canonical job spec; every write
//!   is atomic write-then-rename, so a SIGKILL at any instant leaves
//!   either the old bytes or the new, never a torn file. An identical
//!   resubmit maps to the same paths and is served from cache without
//!   re-simulating.
//! - **Supervisor** ([`supervisor`]): a bounded job queue (overflow is
//!   load-shed with a typed `busy` reply), per-job wall-clock timeouts
//!   ([`JobError::TimedOut`]), bounded retry with exponential backoff
//!   for transient failures, and crash resume — on restart, journaled
//!   interrupted jobs are re-enqueued and pick up from their
//!   checkpoints.
//! - **Server / client** ([`server`], [`client`]): a threaded TCP
//!   front end with clean shutdown on request or OS signal, and a
//!   small blocking client the CLI builds on.
//! - **Chaos layer** ([`chaos`]): every filesystem and socket operation
//!   above goes through narrow shims that are passthroughs in
//!   production and, under `--chaos <seed>` / `RT_CHAOS`, inject a
//!   deterministic schedule of short writes, disk-full errors, failed
//!   renames, torn writes, connection resets, partial reads, and
//!   delays. The same shims power the crash-point harness
//!   (`tests/chaos.rs`), which simulates a process death at *every*
//!   store write point and proves recovery at each one.
//!
//! # Example
//!
//! ```no_run
//! use rt_served::{Chaos, Client, JobSpec, Server, ServerConfig, SupervisorConfig};
//! use std::time::Duration;
//!
//! let server = Server::bind(ServerConfig {
//!     addr: "127.0.0.1:0".to_string(),
//!     store_dir: "store".into(),
//!     supervisor: SupervisorConfig::default(),
//!     signal_flag: None,
//!     chaos: Chaos::off(),
//! })?;
//! let addr = server.local_addr();
//! std::thread::spawn(move || server.run());
//!
//! let client = Client::new(addr.to_string());
//! let spec = JobSpec {
//!     scenes: vec!["CAR".to_string()],
//!     ..JobSpec::default()
//! };
//! let submitted = client.submit(spec)?;
//! let done = client.wait(
//!     submitted.job,
//!     Duration::from_millis(100),
//!     Duration::from_secs(600),
//! )?;
//! for row in client.result(done.job)? {
//!     println!("{}/{}: digest {:#018x}", row.scene, row.config, row.state_digest);
//! }
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod chaos;
pub mod client;
pub mod json;
pub mod protocol;
pub mod server;
pub mod store;
pub mod supervisor;

pub use chaos::{Chaos, ChaosStream, FaultPlan, ServedFs, ServedNet, CHAOS_ENV};
pub use client::{Client, ClientError};
pub use json::{Json, JsonError};
pub use protocol::{
    read_frame, CellResult, ErrorKind, JobSpec, JobState, JobStatus, ProtocolError, Request,
    Response, MAX_FRAME_BYTES, PROTOCOL_VERSION,
};
pub use server::{ServeError, Server, ServerConfig, ShutdownReason};
pub use store::{ArtifactStore, JournaledJob, StoreError, StoreLock};
pub use supervisor::{
    JobError, ResultError, SubmitRejection, Supervisor, SupervisorConfig,
};
