//! The job supervisor: a bounded queue, a worker pool, and the
//! robustness policy (timeouts, retry with backoff, crash resume).
//!
//! Each job is a sweep over (scene × config) cells. Cells run on
//! dedicated threads so the supervising worker can enforce a wall-clock
//! budget with `recv_timeout` — a cell that blows its budget is
//! abandoned (the thread keeps running detached and still caches its
//! result if it ever finishes; the deterministic store makes that a
//! harmless prefill) and the job reports [`JobError::TimedOut`] without
//! disturbing concurrent jobs.
//!
//! Transient failures — a panicking worker, a poisoned batch, an I/O
//! error while checkpointing — are retried with exponential backoff.
//! Deterministic simulation failures are not retried: re-running the
//! same inputs would fail identically.
//!
//! Every lifecycle transition is journaled through the store *before*
//! it takes effect in memory, so a SIGKILL at any instant leaves a
//! journal from which [`Supervisor::start`] re-enqueues interrupted
//! jobs; completed cells are already cached and are skipped on resume,
//! and the in-progress cell resumes from its checkpoint.

use crate::protocol::{CellResult, JobSpec, JobState, JobStatus};
use crate::store::{ArtifactStore, StoreError, StoreLock};
use rt_scene::{SceneId, Workload, WorkloadKind};
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread;
use std::time::{Duration, Instant};
use treelet_rt::{
    catch_job_panic, decode_prepared_bench, encode_prepared_bench, panic_message,
    prepare_cache_key, Bench, CheckpointOptions, SimConfig,
};

/// Locks a mutex, recovering from poisoning.
///
/// A thread that panics while holding one of the supervisor's locks
/// must surface as that job's typed failure, not cascade the whole
/// daemon down with lock-poisoning panics. Recovery is sound here
/// because every guarded update is a single assignment over coarse
/// state (counters, state enums, queued ids) — an unwound holder leaves
/// the map consistent, at worst a little stale, and the journal remains
/// the durable source of truth.
fn relock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Tuning knobs for the supervisor.
#[derive(Debug, Clone)]
pub struct SupervisorConfig {
    /// Concurrent jobs (worker threads).
    pub workers: usize,
    /// Queue slots; a submit past this is load-shed with a typed Busy.
    pub queue_cap: usize,
    /// Per-job wall-clock budget when the spec does not override it.
    pub default_timeout_ms: u64,
    /// Retries after the first attempt of a transiently failing cell.
    pub max_retries: u32,
    /// Base backoff delay; attempt *n* waits `base << (n-1)`, capped at
    /// five seconds.
    pub backoff_base_ms: u64,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        SupervisorConfig {
            workers: 2,
            queue_cap: 32,
            default_timeout_ms: 300_000,
            max_retries: 2,
            backoff_base_ms: 100,
        }
    }
}

/// Why a job stopped without completing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobError {
    /// The job's wall-clock budget expired.
    TimedOut { budget_ms: u64 },
    /// A cell failed (after retries, when the failure was transient).
    Cell {
        scene: String,
        config: String,
        attempts: u32,
        message: String,
    },
}

impl fmt::Display for JobError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JobError::TimedOut { budget_ms } => {
                write!(f, "job exceeded its {budget_ms} ms wall-clock budget")
            }
            JobError::Cell {
                scene,
                config,
                attempts,
                message,
            } => write!(
                f,
                "cell {scene}/{config} failed after {attempts} attempt(s): {message}"
            ),
        }
    }
}

/// Why a submit was rejected.
#[derive(Debug)]
pub enum SubmitRejection {
    /// The queue is full; the client should back off and retry.
    Busy { queue_cap: usize },
    /// The spec failed validation.
    Invalid { message: String },
    /// The journal could not be written.
    Store(StoreError),
}

impl fmt::Display for SubmitRejection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubmitRejection::Busy { queue_cap } => {
                write!(f, "queue full ({queue_cap} jobs); retry later")
            }
            SubmitRejection::Invalid { message } => write!(f, "invalid job spec: {message}"),
            SubmitRejection::Store(e) => write!(f, "cannot journal job: {e}"),
        }
    }
}

/// Why a result fetch failed.
#[derive(Debug)]
pub enum ResultError {
    /// No such job.
    UnknownJob,
    /// The job exists but has not completed.
    NotDone {
        state: JobState,
        error: Option<String>,
    },
    /// A cell of a done job is missing from the cache (store tampering).
    MissingCell { cell: u64 },
}

struct JobRecord {
    spec: JobSpec,
    state: JobState,
    cells_done: usize,
    error: Option<String>,
    cached: bool,
}

struct Shared {
    store: ArtifactStore,
    cfg: SupervisorConfig,
    queue: Mutex<VecDeque<u64>>,
    wake: Condvar,
    jobs: Mutex<HashMap<u64, JobRecord>>,
    shutdown: AtomicBool,
}

/// The running supervisor. Dropping it without calling
/// [`Supervisor::shutdown`] detaches the workers (the process is
/// exiting anyway); the journal protects the work either way.
pub struct Supervisor {
    shared: Arc<Shared>,
    workers: Mutex<Vec<thread::JoinHandle<()>>>,
    /// Exclusive ownership of the store, released at shutdown (or drop).
    lock: Mutex<Option<StoreLock>>,
}

impl Supervisor {
    /// Takes the store's exclusive lock, opens the journal, re-enqueues
    /// any job the previous process left `queued` or `running`, and
    /// starts the worker pool.
    ///
    /// # Errors
    ///
    /// [`StoreError::Locked`] if another live daemon owns the store,
    /// and [`StoreError`] if the journal is unreadable or corrupt —
    /// startup must fail loudly rather than silently drop journaled
    /// work or interleave writes with a concurrent daemon.
    pub fn start(store: ArtifactStore, cfg: SupervisorConfig) -> Result<Supervisor, StoreError> {
        let lock = store.lock()?;
        let journaled = store.load_jobs()?;
        let shared = Arc::new(Shared {
            store,
            cfg,
            queue: Mutex::new(VecDeque::new()),
            wake: Condvar::new(),
            jobs: Mutex::new(HashMap::new()),
            shutdown: AtomicBool::new(false),
        });

        for job in journaled {
            let cells_done = count_cached_cells(&shared.store, &job.spec);
            let resume = !job.state.is_terminal();
            let state = if resume { JobState::Queued } else { job.state };
            if resume {
                // Re-journal as queued so a crash between here and the
                // worker picking it up changes nothing.
                shared
                    .store
                    .journal_job(job.id, &job.spec, JobState::Queued, None)?;
            }
            relock(&shared.jobs).insert(
                job.id,
                JobRecord {
                    spec: job.spec,
                    state,
                    cells_done,
                    error: job.error,
                    cached: false,
                },
            );
            if resume {
                relock(&shared.queue).push_back(job.id);
            }
        }

        let workers = (0..shared.cfg.workers.max(1))
            .map(|_| {
                let shared = Arc::clone(&shared);
                thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        Ok(Supervisor {
            shared,
            workers: Mutex::new(workers),
            lock: Mutex::new(Some(lock)),
        })
    }

    /// Submits a job: validates, content-addresses, and either returns
    /// the existing/cached status or journals and enqueues it.
    ///
    /// # Errors
    ///
    /// [`SubmitRejection::Invalid`] for bad specs,
    /// [`SubmitRejection::Busy`] when the queue is full, and
    /// [`SubmitRejection::Store`] when the journal write fails.
    pub fn submit(&self, spec: JobSpec) -> Result<JobStatus, SubmitRejection> {
        if let Err(message) = validate_spec(&spec) {
            return Err(SubmitRejection::Invalid { message });
        }
        let id = spec.identity();
        let shared = &self.shared;
        let mut jobs = relock(&shared.jobs);

        if let Some(record) = jobs.get(&id) {
            // Queued/running/done: the earlier submission answers this
            // one. Failed/timed-out: fall through and requeue a fresh
            // attempt below.
            if !record.state.is_terminal() || record.state == JobState::Done {
                let mut status = status_of(id, record);
                // A submit answered by an already-done job never
                // simulated anything on this request: that is a cache
                // hit from the submitter's point of view, whichever
                // process originally ran the job.
                status.cached |= record.state == JobState::Done;
                return Ok(status);
            }
        }

        // Full cache hit: every cell already has a result, so the job
        // completes at submit time without touching the queue.
        let cells = spec.cells();
        let cells_done = count_cached_cells(&shared.store, &spec);
        if cells_done == cells.len() {
            shared
                .store
                .journal_job(id, &spec, JobState::Done, None)
                .map_err(SubmitRejection::Store)?;
            let record = JobRecord {
                spec,
                state: JobState::Done,
                cells_done,
                error: None,
                cached: true,
            };
            let status = status_of(id, &record);
            jobs.insert(id, record);
            return Ok(status);
        }

        {
            let queue = relock(&shared.queue);
            if queue.len() >= shared.cfg.queue_cap {
                return Err(SubmitRejection::Busy {
                    queue_cap: shared.cfg.queue_cap,
                });
            }
        }
        shared
            .store
            .journal_job(id, &spec, JobState::Queued, None)
            .map_err(SubmitRejection::Store)?;
        let record = JobRecord {
            spec,
            state: JobState::Queued,
            cells_done,
            error: None,
            cached: false,
        };
        let status = status_of(id, &record);
        jobs.insert(id, record);
        drop(jobs);
        relock(&shared.queue).push_back(id);
        shared.wake.notify_one();
        Ok(status)
    }

    /// A job's current status, or `None` for an unknown id.
    pub fn status(&self, id: u64) -> Option<JobStatus> {
        let jobs = relock(&self.shared.jobs);
        jobs.get(&id).map(|record| status_of(id, record))
    }

    /// A completed job's cell results, in the spec's cell order.
    ///
    /// # Errors
    ///
    /// [`ResultError::UnknownJob`], [`ResultError::NotDone`], or
    /// [`ResultError::MissingCell`] if the cache was tampered with.
    pub fn result(&self, id: u64) -> Result<Vec<CellResult>, ResultError> {
        let (spec, state, error) = {
            let jobs = relock(&self.shared.jobs);
            let record = jobs.get(&id).ok_or(ResultError::UnknownJob)?;
            (record.spec.clone(), record.state, record.error.clone())
        };
        if state != JobState::Done {
            return Err(ResultError::NotDone { state, error });
        }
        spec.cells()
            .iter()
            .map(|(scene, config)| {
                let key = spec.cell_identity(scene, config);
                self.shared
                    .store
                    .read_cell_result(key)
                    .ok_or(ResultError::MissingCell { cell: key })
            })
            .collect()
    }

    /// Blocks until job `id` reaches a terminal state or `budget`
    /// elapses — the driver the crash-point harness uses to run one
    /// daemon lifecycle to quiescence without a TCP round trip per
    /// poll. Returns `None` for unknown ids and expired budgets.
    pub fn wait_terminal(&self, id: u64, poll: Duration, budget: Duration) -> Option<JobStatus> {
        let deadline = Instant::now() + budget;
        loop {
            let status = self.status(id)?;
            if status.state.is_terminal() {
                return Some(status);
            }
            if Instant::now() >= deadline {
                return None;
            }
            thread::sleep(poll);
        }
    }

    /// Jobs currently waiting in the queue.
    pub fn queue_depth(&self) -> usize {
        relock(&self.shared.queue).len()
    }

    /// Stops accepting work and joins the workers.
    ///
    /// In-flight cells are abandoned mid-run; their jobs stay journaled
    /// as `running` and resume from checkpoints on the next
    /// [`Supervisor::start`].
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.wake.notify_all();
        let workers = std::mem::take(&mut *relock(&self.workers));
        for handle in workers {
            let _ = handle.join();
        }
        // Release the store for the next daemon only after the workers
        // can no longer write to it.
        relock(&self.lock).take();
    }
}

fn status_of(id: u64, record: &JobRecord) -> JobStatus {
    JobStatus {
        job: id,
        state: record.state,
        cells_total: record.spec.cells().len() as u64,
        cells_done: record.cells_done as u64,
        error: record.error.clone(),
        cached: record.cached,
    }
}

fn count_cached_cells(store: &ArtifactStore, spec: &JobSpec) -> usize {
    spec.cells()
        .iter()
        .filter(|(scene, config)| {
            store
                .read_cell_result(spec.cell_identity(scene, config))
                .is_some()
        })
        .count()
}

/// Validates a spec against the simulator's registries. Returns a
/// human-readable complaint on failure.
fn validate_spec(spec: &JobSpec) -> Result<(), String> {
    if spec.scenes.is_empty() {
        return Err("`scenes` must name at least one scene".to_string());
    }
    for scene in &spec.scenes {
        if SceneId::from_name(scene).is_none() {
            return Err(format!("unknown scene `{scene}`"));
        }
    }
    if spec.configs.is_empty() {
        return Err("`configs` must name at least one config".to_string());
    }
    for config in &spec.configs {
        if build_config(config, spec).is_none() {
            return Err(format!(
                "unknown config `{config}` (expected baseline | traversal | prefetch)"
            ));
        }
    }
    if !(spec.detail.is_finite() && spec.detail > 0.0) {
        return Err(format!("detail {} is not a positive number", spec.detail));
    }
    if spec.res == 0 || spec.res > 4096 {
        return Err(format!("res {} is not in 1..=4096", spec.res));
    }
    if workload_kind(&spec.workload).is_none() {
        return Err(format!(
            "unknown workload `{}` (expected primary | diffuse | shadow)",
            spec.workload
        ));
    }
    if spec.treelet_bytes < 64 {
        return Err(format!(
            "treelet_bytes {} is below the 64-byte node size",
            spec.treelet_bytes
        ));
    }
    if spec.checkpoint_every == 0 {
        return Err("checkpoint_every must be nonzero".to_string());
    }
    Ok(())
}

fn workload_kind(name: &str) -> Option<WorkloadKind> {
    Some(match name {
        "primary" => WorkloadKind::Primary,
        "diffuse" => WorkloadKind::Diffuse,
        "shadow" => WorkloadKind::Shadow,
        _ => return None,
    })
}

fn build_config(name: &str, spec: &JobSpec) -> Option<SimConfig> {
    let mut config = match name {
        "baseline" => SimConfig::paper_baseline(),
        "traversal" => SimConfig::paper_treelet_traversal_only(),
        "prefetch" => SimConfig::paper_treelet_prefetch(),
        _ => return None,
    };
    config.treelet_bytes = spec.treelet_bytes;
    if let Some(max_cycles) = spec.max_cycles {
        config.max_cycles = max_cycles;
    }
    Some(config)
}

fn worker_loop(shared: &Shared) {
    loop {
        let id = {
            let mut queue = relock(&shared.queue);
            loop {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                if let Some(id) = queue.pop_front() {
                    break id;
                }
                let (guard, _) = shared
                    .wake
                    .wait_timeout(queue, Duration::from_millis(200))
                    .unwrap_or_else(PoisonError::into_inner);
                queue = guard;
            }
        };
        run_job(shared, id);
    }
}

/// Transitions a job's state in memory and in the journal. Journal
/// write failures are swallowed here — the in-memory state still
/// serves clients, and the worst crash outcome is a redundant re-run.
fn transition(shared: &Shared, id: u64, state: JobState, error: Option<&JobError>) {
    let mut jobs = relock(&shared.jobs);
    if let Some(record) = jobs.get_mut(&id) {
        record.state = state;
        record.error = error.map(|e| e.to_string());
        let spec = record.spec.clone();
        drop(jobs);
        let message = error.map(|e| e.to_string());
        let _ = shared
            .store
            .journal_job(id, &spec, state, message.as_deref());
    }
}

fn run_job(shared: &Shared, id: u64) {
    let spec = match relock(&shared.jobs).get(&id) {
        Some(record) => record.spec.clone(),
        None => return,
    };
    transition(shared, id, JobState::Running, None);

    let budget_ms = spec.timeout_ms.unwrap_or(shared.cfg.default_timeout_ms);
    let deadline = Instant::now() + Duration::from_millis(budget_ms);

    for (index, (scene, config)) in spec.cells().into_iter().enumerate() {
        let key = spec.cell_identity(&scene, &config);
        if shared.store.read_cell_result(key).is_some() {
            bump_cells_done(shared, id);
            continue;
        }

        let mut attempts = 0u32;
        loop {
            if shared.shutdown.load(Ordering::SeqCst) {
                // Leave the journal saying `running`; the next start
                // re-enqueues and resumes from the checkpoint.
                return;
            }
            attempts += 1;
            let outcome = match run_cell_with_deadline(
                shared, &spec, index, &scene, &config, key, deadline,
            ) {
                CellOutcome::Done => {
                    bump_cells_done(shared, id);
                    break;
                }
                CellOutcome::Abandoned => return,
                CellOutcome::TimedOut => {
                    transition(
                        shared,
                        id,
                        JobState::TimedOut,
                        Some(&JobError::TimedOut { budget_ms }),
                    );
                    return;
                }
                CellOutcome::Failed(failure) => failure,
            };
            let out_of_retries = attempts > shared.cfg.max_retries;
            if !outcome.transient || out_of_retries {
                transition(
                    shared,
                    id,
                    JobState::Failed,
                    Some(&JobError::Cell {
                        scene,
                        config,
                        attempts,
                        message: outcome.message,
                    }),
                );
                return;
            }
            backoff(shared, attempts);
        }
    }
    transition(shared, id, JobState::Done, None);
}

fn bump_cells_done(shared: &Shared, id: u64) {
    if let Some(record) = relock(&shared.jobs).get_mut(&id) {
        record.cells_done += 1;
    }
}

/// Exponential backoff before a retry: `base << (attempt-1)`, capped at
/// five seconds, sliced so shutdown stays responsive.
fn backoff(shared: &Shared, attempt: u32) {
    let base = shared.cfg.backoff_base_ms.max(1);
    let delay_ms = base
        .saturating_mul(1u64 << (attempt - 1).min(16))
        .min(5_000);
    let until = Instant::now() + Duration::from_millis(delay_ms);
    while Instant::now() < until {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        thread::sleep(Duration::from_millis(10));
    }
}

enum CellOutcome {
    Done,
    TimedOut,
    /// Shutdown was requested while the cell ran.
    Abandoned,
    Failed(CellFailure),
}

struct CellFailure {
    transient: bool,
    message: String,
}

/// Runs one cell on a dedicated thread, supervising it against the
/// job's deadline in 50 ms slices. On timeout the thread is abandoned,
/// not killed: if it eventually finishes, it writes its (deterministic)
/// result into the cache, which only helps a future resubmit.
fn run_cell_with_deadline(
    shared: &Shared,
    spec: &JobSpec,
    cell_index: usize,
    scene: &str,
    config: &str,
    key: u64,
    deadline: Instant,
) -> CellOutcome {
    let (tx, rx) = mpsc::channel::<Result<(), CellFailure>>();
    {
        let store = shared.store.clone();
        let spec = spec.clone();
        let scene = scene.to_string();
        let config = config.to_string();
        thread::spawn(move || {
            let outcome = run_cell(&store, &spec, cell_index, &scene, &config, key);
            let _ = tx.send(outcome);
        });
    }
    loop {
        match rx.recv_timeout(Duration::from_millis(50)) {
            Ok(Ok(())) => return CellOutcome::Done,
            Ok(Err(failure)) => return CellOutcome::Failed(failure),
            Err(mpsc::RecvTimeoutError::Timeout) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return CellOutcome::Abandoned;
                }
                if Instant::now() >= deadline {
                    return CellOutcome::TimedOut;
                }
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                return CellOutcome::Failed(CellFailure {
                    transient: true,
                    message: "cell thread vanished without reporting".to_string(),
                })
            }
        }
    }
}

/// Prepares a cell's bench through the store's preparation-artifact
/// cache: a valid cached `RTBVH01` entry skips scene generation, BVH
/// construction, and ray generation; a miss (or a corrupt entry, which
/// self-heals) builds fresh and repopulates the cache, so every later
/// cell — and every resubmitted job — sharing this (scene, detail,
/// workload) skips the build entirely. Bad spec inputs surface as
/// fatal typed failures via [`Bench::try_prepare`].
fn prepare_bench_cached(
    store: &ArtifactStore,
    scene_id: SceneId,
    detail: f32,
    workload: Workload,
) -> Result<Bench, CellFailure> {
    let key = prepare_cache_key(scene_id, detail, &workload);
    if let Some(bytes) = store.read_bvh_artifact(key) {
        match decode_prepared_bench(scene_id, key, &bytes) {
            Ok((bench, _assignment)) => return Ok(bench),
            Err(_) => store.remove_bvh_artifact(key),
        }
    }
    let bench = Bench::try_prepare(scene_id, detail, workload).map_err(|e| CellFailure {
        transient: false,
        message: e.to_string(),
    })?;
    // Population is best-effort: a store that cannot take the artifact
    // (full disk, injected fault) costs future build time, never this
    // cell's result.
    let _ = store.write_bvh_artifact(key, &encode_prepared_bench(&bench, key));
    Ok(bench)
}

/// Builds and simulates one cell, caching the result on success. Runs
/// on the cell thread; panics are contained at this boundary into
/// typed `WorkerPanicked` errors.
fn run_cell(
    store: &ArtifactStore,
    spec: &JobSpec,
    cell_index: usize,
    scene: &str,
    config: &str,
    key: u64,
) -> Result<(), CellFailure> {
    let fatal = |message: String| CellFailure {
        transient: false,
        message,
    };
    let scene_id =
        SceneId::from_name(scene).ok_or_else(|| fatal(format!("unknown scene `{scene}`")))?;
    let sim_config =
        build_config(config, spec).ok_or_else(|| fatal(format!("unknown config `{config}`")))?;
    let kind = workload_kind(&spec.workload)
        .ok_or_else(|| fatal(format!("unknown workload `{}`", spec.workload)))?;
    store.ensure_cell_dir(key).map_err(|e| CellFailure {
        transient: true,
        message: e.to_string(),
    })?;

    let detail = spec.detail;
    let workload = Workload::new(kind, spec.res, spec.res);
    let opts = CheckpointOptions::new(spec.checkpoint_every, store.checkpoint_path(key))
        .with_digest_log(store.digest_log_path(key));
    // Preparation first, through the store's BVH artifact cache and
    // the fallible path: a bad detail in a job spec is a fatal typed
    // failure for this cell, not a daemon-thread panic. Panics from
    // deeper in scene/BVH construction are still contained.
    let prepared = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        prepare_bench_cached(store, scene_id, detail, workload)
    }));
    let bench = match prepared {
        Ok(Ok(bench)) => bench,
        Ok(Err(failure)) => return Err(failure),
        Err(payload) => {
            return Err(CellFailure {
                transient: true,
                message: format!(
                    "job {cell_index} panicked: {}",
                    panic_message(&*payload)
                ),
            })
        }
    };
    // The closure's Err type is the simulator's SimError (128+ bytes
    // with its ProgressSnapshot payload); one cell runs per thread, so
    // the large-variant cost is irrelevant here.
    #[allow(clippy::result_large_err)]
    let outcome = catch_job_panic(cell_index, || bench.try_run_resumable(&sim_config, &opts));
    match outcome {
        Ok(result) => {
            let cell = CellResult {
                cell: key,
                scene: scene.to_string(),
                config: config.to_string(),
                cycles: result.cycles,
                rays: result.rays as u64,
                state_digest: result.state_digest,
            };
            store.write_cell_result(&cell).map_err(|e| CellFailure {
                transient: true,
                message: e.to_string(),
            })?;
            Ok(())
        }
        Err(e) => Err(CellFailure {
            transient: e.is_transient(),
            message: e.to_string(),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_store(tag: &str) -> ArtifactStore {
        let dir =
            std::env::temp_dir().join(format!("rt-served-sup-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        ArtifactStore::open(dir).expect("open store")
    }

    fn tiny_spec() -> JobSpec {
        JobSpec {
            scenes: vec!["WKND".to_string()],
            configs: vec!["prefetch".to_string()],
            detail: 0.05,
            res: 4,
            workload: "primary".to_string(),
            treelet_bytes: 512,
            max_cycles: None,
            timeout_ms: None,
            checkpoint_every: 5_000,
        }
    }

    fn wait_terminal(sup: &Supervisor, id: u64) -> JobStatus {
        let deadline = Instant::now() + Duration::from_secs(60);
        loop {
            let status = sup.status(id).expect("job known");
            if status.state.is_terminal() {
                return status;
            }
            assert!(Instant::now() < deadline, "job {id:#x} never finished");
            thread::sleep(Duration::from_millis(20));
        }
    }

    #[test]
    fn runs_a_job_and_serves_the_resubmit_from_cache() {
        let store = temp_store("cache");
        let sup = Supervisor::start(store.clone(), SupervisorConfig::default()).unwrap();
        let spec = tiny_spec();

        let status = sup.submit(spec.clone()).unwrap();
        assert!(!status.cached);
        let done = wait_terminal(&sup, status.job);
        assert_eq!(done.state, JobState::Done);
        assert_eq!(done.cells_done, 1);
        let rows = sup.result(status.job).unwrap();
        assert_eq!(rows.len(), 1);
        sup.shutdown();

        // A fresh supervisor over the same store answers the identical
        // spec at submit time, from cache, without re-running.
        let sup2 = Supervisor::start(store.clone(), SupervisorConfig::default()).unwrap();
        let hit = sup2.submit(spec).unwrap();
        assert_eq!(hit.state, JobState::Done);
        assert!(hit.cached, "identical resubmit must be a cache hit");
        assert_eq!(sup2.result(hit.job).unwrap(), rows, "same cached rows");
        sup2.shutdown();
        let _ = std::fs::remove_dir_all(store.root());
    }

    #[test]
    fn invalid_specs_are_rejected_with_reasons() {
        let store = temp_store("invalid");
        let sup = Supervisor::start(store.clone(), SupervisorConfig::default()).unwrap();
        let cases: Vec<(JobSpec, &str)> = vec![
            (
                JobSpec {
                    scenes: vec![],
                    ..tiny_spec()
                },
                "at least one scene",
            ),
            (
                JobSpec {
                    scenes: vec!["NOPE".to_string()],
                    ..tiny_spec()
                },
                "unknown scene",
            ),
            (
                JobSpec {
                    configs: vec!["warp-drive".to_string()],
                    ..tiny_spec()
                },
                "unknown config",
            ),
            (
                JobSpec {
                    detail: -1.0,
                    ..tiny_spec()
                },
                "positive",
            ),
            (
                JobSpec {
                    res: 0,
                    ..tiny_spec()
                },
                "res",
            ),
            (
                JobSpec {
                    workload: "bounce".to_string(),
                    ..tiny_spec()
                },
                "unknown workload",
            ),
            (
                JobSpec {
                    treelet_bytes: 8,
                    ..tiny_spec()
                },
                "treelet_bytes",
            ),
            (
                JobSpec {
                    checkpoint_every: 0,
                    ..tiny_spec()
                },
                "checkpoint_every",
            ),
        ];
        for (spec, needle) in cases {
            match sup.submit(spec) {
                Err(SubmitRejection::Invalid { message }) => {
                    assert!(message.contains(needle), "`{message}` mentions {needle}")
                }
                other => panic!("expected Invalid({needle}), got {other:?}"),
            }
        }
        sup.shutdown();
        let _ = std::fs::remove_dir_all(store.root());
    }

    #[test]
    fn timed_out_job_reports_timeout_while_others_complete() {
        let store = temp_store("timeout");
        let sup = Supervisor::start(store.clone(), SupervisorConfig::default()).unwrap();

        // A 1 ms budget on a scene that takes ~2 s: must time out.
        let doomed = JobSpec {
            scenes: vec!["CAR".to_string()],
            detail: 1.0,
            res: 256,
            timeout_ms: Some(1),
            ..tiny_spec()
        };
        // A normal tiny job submitted alongside: must be unaffected.
        let fine = tiny_spec();

        let doomed_id = sup.submit(doomed).unwrap().job;
        let fine_id = sup.submit(fine).unwrap().job;

        let doomed_status = wait_terminal(&sup, doomed_id);
        assert_eq!(doomed_status.state, JobState::TimedOut);
        let message = doomed_status.error.expect("timeout carries an error");
        assert!(message.contains("wall-clock budget"), "{message}");
        assert!(matches!(
            sup.result(doomed_id),
            Err(ResultError::NotDone {
                state: JobState::TimedOut,
                ..
            })
        ));

        let fine_status = wait_terminal(&sup, fine_id);
        assert_eq!(
            fine_status.state,
            JobState::Done,
            "a concurrent job must not be disturbed by another job's timeout"
        );
        sup.shutdown();
        let _ = std::fs::remove_dir_all(store.root());
    }

    #[test]
    fn queue_overflow_sheds_load_with_typed_busy() {
        let store = temp_store("busy");
        // One worker, one queue slot, and a job slow enough to occupy
        // the worker while we overfill the queue.
        let cfg = SupervisorConfig {
            workers: 1,
            queue_cap: 1,
            ..SupervisorConfig::default()
        };
        let sup = Supervisor::start(store.clone(), cfg).unwrap();

        let slow = JobSpec {
            scenes: vec!["CAR".to_string()],
            detail: 0.5,
            res: 64,
            ..tiny_spec()
        };
        let a = JobSpec {
            detail: 0.06,
            ..tiny_spec()
        };
        let b = JobSpec {
            detail: 0.07,
            ..tiny_spec()
        };
        sup.submit(slow).unwrap();
        // The worker may grab either queued entry quickly; keep filling
        // until the queue genuinely overflows or both fit (in which
        // case a third distinct spec must bounce).
        let c = JobSpec {
            detail: 0.08,
            ..tiny_spec()
        };
        let mut saw_busy = false;
        for spec in [a, b, c] {
            match sup.submit(spec) {
                Ok(_) => {}
                Err(SubmitRejection::Busy { queue_cap }) => {
                    assert_eq!(queue_cap, 1);
                    saw_busy = true;
                    break;
                }
                Err(other) => panic!("expected Busy, got {other:?}"),
            }
        }
        assert!(saw_busy, "an overfull queue must shed load");
        sup.shutdown();
        let _ = std::fs::remove_dir_all(store.root());
    }

    #[test]
    fn interrupted_jobs_resume_on_restart() {
        let store = temp_store("resume");
        let spec = tiny_spec();
        let id = spec.identity();
        // Simulate a daemon that journaled a running job and was then
        // SIGKILLed: the journal says `running`, no result is cached.
        store
            .journal_job(id, &spec, JobState::Running, None)
            .unwrap();

        let sup = Supervisor::start(store.clone(), SupervisorConfig::default()).unwrap();
        let status = wait_terminal(&sup, id);
        assert_eq!(
            status.state,
            JobState::Done,
            "a journaled running job must be re-run to completion on restart"
        );
        assert_eq!(sup.result(id).unwrap().len(), 1);
        sup.shutdown();
        let _ = std::fs::remove_dir_all(store.root());
    }

    #[test]
    fn second_supervisor_on_a_locked_store_is_refused() {
        let store = temp_store("locked");
        let sup = Supervisor::start(store.clone(), SupervisorConfig::default()).unwrap();
        match Supervisor::start(store.clone(), SupervisorConfig::default()) {
            Err(StoreError::Locked { .. }) => {}
            Err(other) => panic!("expected Locked, got {other}"),
            Ok(_) => panic!("two daemons must not share a store"),
        }
        sup.shutdown();
        // Shutdown released the lock; the next daemon starts cleanly.
        let sup2 = Supervisor::start(store.clone(), SupervisorConfig::default())
            .expect("restart after clean shutdown");
        sup2.shutdown();
        let _ = std::fs::remove_dir_all(store.root());
    }

    #[test]
    fn poisoned_locks_do_not_cascade() {
        let store = temp_store("poison");
        let sup = Supervisor::start(store.clone(), SupervisorConfig::default()).unwrap();
        let spec = tiny_spec();
        let id = sup.submit(spec.clone()).unwrap().job;
        wait_terminal(&sup, id);

        // Panic while holding each supervisor lock, poisoning it.
        for _ in 0..2 {
            let shared = Arc::clone(&sup.shared);
            let _ = thread::spawn(move || {
                let _jobs = shared.jobs.lock().unwrap();
                panic!("deliberate poison");
            })
            .join();
            let shared = Arc::clone(&sup.shared);
            let _ = thread::spawn(move || {
                let _queue = shared.queue.lock().unwrap();
                panic!("deliberate poison");
            })
            .join();
        }

        // Every API that takes those locks must still answer.
        assert_eq!(sup.status(id).unwrap().state, JobState::Done);
        assert_eq!(sup.queue_depth(), 0);
        let resubmit = sup.submit(spec).unwrap();
        assert!(resubmit.cached, "cache hit must survive poisoned locks");
        assert_eq!(sup.result(id).unwrap().len(), 1);
        sup.shutdown();
        let _ = std::fs::remove_dir_all(store.root());
    }

    #[test]
    fn unknown_jobs_are_typed_errors() {
        let store = temp_store("unknown");
        let sup = Supervisor::start(store.clone(), SupervisorConfig::default()).unwrap();
        assert!(sup.status(0x1234).is_none());
        assert!(matches!(sup.result(0x1234), Err(ResultError::UnknownJob)));
        sup.shutdown();
        let _ = std::fs::remove_dir_all(store.root());
    }
}
