//! End-to-end daemon tests: a real `Server` bound to an OS-assigned
//! port, exercised through the real TCP `Client`.
//!
//! These cover the robustness headlines the crate exists for: cache
//! hits on identical resubmits, typed timeouts that leave concurrent
//! jobs untouched, load-shedding, resume of interrupted jobs on
//! restart, and clean protocol-driven shutdown.

use rt_served::{
    Chaos, Client, ClientError, ErrorKind, JobSpec, JobState, Server, ServerConfig,
    ShutdownReason, SupervisorConfig,
};
use std::net::TcpStream;
use std::path::PathBuf;
use std::time::Duration;

/// A daemon on an ephemeral port over a temp store, plus the handle
/// needed to join its accept loop.
struct TestDaemon {
    client: Client,
    runner: std::thread::JoinHandle<ShutdownReason>,
}

fn fresh_store(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rt-served-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn spawn_daemon(store_dir: PathBuf, supervisor: SupervisorConfig) -> TestDaemon {
    let server = Server::bind(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        store_dir: store_dir.clone(),
        supervisor,
        signal_flag: None,
        chaos: Chaos::off(),
    })
    .expect("bind daemon");
    let addr = server.local_addr();
    let runner = std::thread::spawn(move || server.run().expect("daemon run"));
    TestDaemon {
        client: Client::new(addr.to_string()),
        runner,
    }
}

impl TestDaemon {
    /// Requests shutdown over the protocol and joins the accept loop.
    fn stop(self) -> ShutdownReason {
        self.client.shutdown().expect("shutdown ack");
        self.runner.join().expect("daemon thread")
    }
}

fn tiny_spec() -> JobSpec {
    JobSpec {
        scenes: vec!["WKND".to_string()],
        configs: vec!["prefetch".to_string()],
        detail: 0.05,
        res: 4,
        ..JobSpec::default()
    }
}

const POLL: Duration = Duration::from_millis(25);
const BUDGET: Duration = Duration::from_secs(120);

#[test]
fn submit_runs_and_identical_resubmit_is_a_cache_hit() {
    let daemon = spawn_daemon(fresh_store("cache"), SupervisorConfig::default());
    daemon.client.ping().expect("ping");

    let first = daemon.client.submit(tiny_spec()).expect("submit");
    assert!(!first.cached);
    let done = daemon
        .client
        .wait(first.job, POLL, BUDGET)
        .expect("job finishes");
    assert_eq!(done.state, JobState::Done);
    let rows = daemon.client.result(done.job).expect("rows");
    assert_eq!(rows.len(), 1);
    assert_eq!(rows[0].scene, "WKND");

    // Identical spec (even with different budget knobs): same job id,
    // answered from cache at submit time, byte-identical digest.
    let resubmit = JobSpec {
        timeout_ms: Some(999_999),
        ..tiny_spec()
    };
    let hit = daemon.client.submit(resubmit).expect("resubmit");
    assert_eq!(hit.job, first.job, "identity ignores budget knobs");
    assert_eq!(hit.state, JobState::Done);
    assert!(hit.cached, "identical resubmit must be served from cache");
    let rows2 = daemon.client.result(hit.job).expect("cached rows");
    assert_eq!(rows, rows2, "cache returns the identical rows");

    assert_eq!(daemon.stop(), ShutdownReason::Requested);
}

#[test]
fn timeout_is_typed_and_does_not_disturb_concurrent_jobs() {
    let daemon = spawn_daemon(fresh_store("timeout"), SupervisorConfig::default());

    // ~2 s of simulation against a 1 ms budget: must time out.
    let doomed = daemon
        .client
        .submit(JobSpec {
            scenes: vec!["CAR".to_string()],
            detail: 1.0,
            res: 256,
            timeout_ms: Some(1),
            ..tiny_spec()
        })
        .expect("submit doomed");
    let fine = daemon.client.submit(tiny_spec()).expect("submit fine");

    let doomed_status = daemon
        .client
        .wait(doomed.job, POLL, BUDGET)
        .expect("doomed terminal");
    assert_eq!(doomed_status.state, JobState::TimedOut);
    let message = doomed_status.error.expect("timeout detail");
    assert!(message.contains("wall-clock budget"), "{message}");

    // Fetching a timed-out job's results is a typed not-done error.
    match daemon.client.result(doomed.job) {
        Err(ClientError::Server {
            kind: ErrorKind::NotDone,
            message,
        }) => assert!(message.contains("timed-out"), "{message}"),
        other => panic!("expected NotDone, got {other:?}"),
    }

    let fine_status = daemon
        .client
        .wait(fine.job, POLL, BUDGET)
        .expect("fine terminal");
    assert_eq!(
        fine_status.state,
        JobState::Done,
        "concurrent job must complete despite the other job's timeout"
    );
    daemon.stop();
}

#[test]
fn overflowing_the_queue_is_a_typed_busy_rejection() {
    let daemon = spawn_daemon(
        fresh_store("busy"),
        SupervisorConfig {
            workers: 1,
            queue_cap: 1,
            ..SupervisorConfig::default()
        },
    );
    // Occupy the single worker with a slow job, then overfill the
    // 1-slot queue with distinct specs until one bounces.
    daemon
        .client
        .submit(JobSpec {
            scenes: vec!["CAR".to_string()],
            detail: 0.5,
            res: 64,
            ..tiny_spec()
        })
        .expect("slow job accepted");
    let mut saw_busy = false;
    for detail in [0.06, 0.07, 0.08] {
        match daemon.client.submit(JobSpec {
            detail,
            ..tiny_spec()
        }) {
            Ok(_) => {}
            Err(ClientError::Server {
                kind: ErrorKind::Busy,
                message,
            }) => {
                assert!(message.contains("retry"), "{message}");
                saw_busy = true;
                break;
            }
            Err(other) => panic!("expected Busy, got {other:?}"),
        }
    }
    assert!(saw_busy, "the queue must shed load once full");
    daemon.stop();
}

#[test]
fn invalid_specs_and_unknown_jobs_are_typed_server_errors() {
    let daemon = spawn_daemon(fresh_store("invalid"), SupervisorConfig::default());
    match daemon.client.submit(JobSpec {
        scenes: vec!["ATLANTIS".to_string()],
        ..tiny_spec()
    }) {
        Err(ClientError::Server {
            kind: ErrorKind::Invalid,
            message,
        }) => assert!(message.contains("ATLANTIS"), "{message}"),
        other => panic!("expected Invalid, got {other:?}"),
    }
    match daemon.client.status(0x1234) {
        Err(ClientError::Server {
            kind: ErrorKind::UnknownJob,
            ..
        }) => {}
        other => panic!("expected UnknownJob, got {other:?}"),
    }
    daemon.stop();
}

#[test]
fn garbage_on_the_wire_gets_a_typed_protocol_error_not_a_hang() {
    use std::io::{BufRead, BufReader, Write};
    let daemon = spawn_daemon(fresh_store("garbage"), SupervisorConfig::default());
    daemon.client.ping().expect("ping");
    let mut raw = TcpStream::connect(daemon.client.addr()).expect("raw connect");
    raw.write_all(b"this is not json\n").expect("send garbage");
    raw.flush().unwrap();
    let mut reply = String::new();
    BufReader::new(&raw).read_line(&mut reply).expect("reply");
    assert!(
        reply.contains("\"error\":\"protocol\""),
        "typed protocol error on the wire: {reply}"
    );
    daemon.stop();
}

#[test]
fn interrupted_jobs_resume_after_restart_with_identical_digests() {
    let store_dir = fresh_store("restart");

    // First daemon: run a reference job to completion, and journal a
    // second job as `running` (as a SIGKILLed daemon would leave it).
    let daemon = spawn_daemon(store_dir.clone(), SupervisorConfig::default());
    let reference = daemon.client.submit(tiny_spec()).expect("reference");
    let done = daemon
        .client
        .wait(reference.job, POLL, BUDGET)
        .expect("reference done");
    let reference_rows = daemon.client.result(done.job).expect("reference rows");
    daemon.stop();

    // Simulate the crash aftermath: rewrite the journal entry back to
    // `running` and delete the cached cell, leaving only the journal
    // (and any checkpoint) to recover from.
    let store = rt_served::ArtifactStore::open(&store_dir).expect("reopen store");
    let spec = tiny_spec();
    store
        .journal_job(spec.identity(), &spec, JobState::Running, None)
        .expect("journal running");
    std::fs::remove_file(store.cell_result_path(
        spec.cell_identity(&spec.scenes[0], &spec.configs[0]),
    ))
    .expect("drop cached cell");

    // Second daemon over the same store: the journaled `running` job
    // must be re-enqueued and re-run to completion unprompted.
    let daemon2 = spawn_daemon(store_dir, SupervisorConfig::default());
    let resumed = daemon2
        .client
        .wait(spec.identity(), POLL, BUDGET)
        .expect("resumed job finishes");
    assert_eq!(resumed.state, JobState::Done);
    let resumed_rows = daemon2.client.result(spec.identity()).expect("rows");
    assert_eq!(
        resumed_rows, reference_rows,
        "resumed run must reproduce identical digests"
    );
    daemon2.stop();
}
