//! The chaos campaign: deterministic fault injection and exhaustive
//! crash-point recovery for the daemon's store and protocol.
//!
//! Three layers of proof, strongest first:
//!
//! 1. **Exhaustive crash points.** A counting pass numbers every
//!    mutating store operation in one full daemon lifecycle (open →
//!    lock → journal → simulate → cache → journal done). Then, for each
//!    point *k*, a fresh lifecycle is killed at exactly op *k* — the op
//!    lands at most a torn, unsynced prefix and every later operation
//!    fails — and a restarted daemon over the wreckage must reproduce
//!    the reference rows bit-for-bit. Not the crashes we happen to hit:
//!    all of them.
//! 2. **Seeded fault schedules.** Whole lifecycles run under
//!    rng-scheduled disk-full errors, short writes, and failed renames;
//!    the retrying daemon must converge to the same bit-identical rows
//!    once the fault budget is spent. A failure reproduces from its
//!    seed.
//! 3. **Zero perturbation.** With chaos off (and with chaos plumbed but
//!    quiet), per-cell state digests equal the simulator run directly —
//!    the shims provably change nothing in production.
//!
//! Plus the hand-crafted wreckage the fault model documents: truncated
//! journals are the typed exit-8 corruption error, truncated cell
//! results and garbage checkpoints self-heal as cache misses, and
//! socket-level chaos (partial reads, delays, resets) perturbs nothing
//! or fails typed.

use rt_served::{
    ArtifactStore, Chaos, Client, ClientError, FaultPlan, JobSpec, JobState, Server,
    ServerConfig, StoreError, Supervisor, SupervisorConfig,
};
use rt_scene::{SceneId, Workload, WorkloadKind};
use std::path::{Path, PathBuf};
use std::time::Duration;
use treelet_rt::SimConfig;

/// The lifecycle every test runs: one small two-cell sweep.
fn harness_spec() -> JobSpec {
    JobSpec {
        scenes: vec!["WKND".to_string()],
        configs: vec!["prefetch".to_string(), "baseline".to_string()],
        detail: 0.05,
        res: 4,
        ..JobSpec::default()
    }
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rt-served-chaos-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn supervisor_config(max_retries: u32) -> SupervisorConfig {
    SupervisorConfig {
        // One worker keeps the store's operation order deterministic,
        // so the counting pass and every crash pass number the same
        // write points.
        workers: 1,
        max_retries,
        backoff_base_ms: 1,
        ..SupervisorConfig::default()
    }
}

/// One full daemon lifecycle over `dir` through `chaos`: start a
/// supervisor, submit the harness spec, drive it to a terminal state,
/// fetch the rows, shut down. Every failure comes back as a message —
/// under chaos, failing typed is a correct outcome; panicking or
/// hanging never is.
fn run_once(
    dir: &Path,
    chaos: &Chaos,
    max_retries: u32,
) -> Result<Vec<rt_served::CellResult>, String> {
    let store =
        ArtifactStore::open_with_fs(dir, chaos.fs()).map_err(|e| format!("open: {e}"))?;
    let sup = Supervisor::start(store, supervisor_config(max_retries))
        .map_err(|e| format!("start: {e}"))?;
    let outcome = (|| {
        let status = sup
            .submit(harness_spec())
            .map_err(|e| format!("submit: {e}"))?;
        let done = sup
            .wait_terminal(status.job, Duration::from_millis(5), Duration::from_secs(120))
            .ok_or("job never reached a terminal state")?;
        if done.state != JobState::Done {
            return Err(format!("job ended {}: {:?}", done.state, done.error));
        }
        sup.result(status.job).map_err(|e| format!("result: {e:?}"))
    })();
    sup.shutdown();
    outcome
}

/// The reference rows, computed through production passthrough shims.
fn reference_rows(tag: &str) -> Vec<rt_served::CellResult> {
    let dir = fresh_dir(tag);
    let rows = run_once(&dir, &Chaos::off(), 2).expect("reference lifecycle");
    let _ = std::fs::remove_dir_all(&dir);
    rows
}

#[test]
fn chaos_off_shims_are_zero_perturbation() {
    let spec = harness_spec();
    let rows = reference_rows("zero-ref");
    assert_eq!(rows.len(), 2);

    // Against the simulator run directly, with no service layer and no
    // shims at all: the daemon's digests must be the simulator's.
    let scene = SceneId::from_name(&spec.scenes[0]).unwrap();
    let workload = Workload::new(WorkloadKind::Primary, spec.res, spec.res);
    let bench = treelet_rt::Bench::prepare(scene, spec.detail, workload);
    for row in &rows {
        let mut config = match row.config.as_str() {
            "prefetch" => SimConfig::paper_treelet_prefetch(),
            "baseline" => SimConfig::paper_baseline(),
            other => panic!("unexpected config {other}"),
        };
        config.treelet_bytes = spec.treelet_bytes;
        let direct = bench.try_run(&config).expect("direct run");
        assert_eq!(
            row.state_digest, direct.state_digest,
            "daemon and direct digests for {} must match",
            row.config
        );
        assert_eq!(row.cycles, direct.cycles);
        assert_eq!(row.rays, direct.rays as u64);
    }

    // And with the chaos plumbing active but injecting nothing: the
    // instrumented path is the production path.
    let dir = fresh_dir("zero-quiet");
    let quiet = Chaos::counting();
    let counted = run_once(&dir, &quiet, 2).expect("quiet chaos lifecycle");
    assert_eq!(counted, rows, "quiet chaos must be bit-identical");
    assert_eq!(quiet.faults_injected(), 0);
    assert!(quiet.write_points() > 0, "the shims were actually in path");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn every_store_write_point_crash_recovers_bit_identically() {
    let reference = reference_rows("crash-ref");

    // Counting pass: number the mutating store ops of one lifecycle.
    let count_dir = fresh_dir("crash-count");
    let counting = Chaos::counting();
    let counted = run_once(&count_dir, &counting, 2).expect("counting lifecycle");
    assert_eq!(counted, reference);
    let points = counting.write_points();
    assert!(
        points >= 22,
        "the lifecycle must expose at least 22 distinct store write points \
         (including the BVH artifact cache writes), counted {points}"
    );
    // The counting lifecycle must have populated the preparation cache:
    // its write points are part of the exhaustive pass below.
    let bvh_entries = std::fs::read_dir(count_dir.join("bvh"))
        .map(|d| d.count())
        .unwrap_or(0);
    assert!(
        bvh_entries > 0,
        "the lifecycle must write at least one BVH artifact cache entry"
    );
    let _ = std::fs::remove_dir_all(&count_dir);

    // Exhaustive pass: die at each point, restart, demand bit-identical
    // recovery.
    for k in 0..points {
        let dir = fresh_dir(&format!("crash-{k}"));
        let chaos = Chaos::crash_at(k);
        // The dying run may fail anywhere (typed) or even report done
        // in memory; the only hard requirements are that the crash
        // actually fired and nothing panicked or hung.
        let _ = run_once(&dir, &chaos, 2);
        assert!(chaos.crashed(), "crash point {k} of {points} never fired");

        let recovered = run_once(&dir, &Chaos::off(), 2).unwrap_or_else(|e| {
            panic!("recovery after a crash at write point {k} failed: {e}")
        });
        assert_eq!(
            recovered, reference,
            "recovery after a crash at write point {k} must be bit-identical"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn seeded_fault_schedules_converge_to_identical_results() {
    let reference = reference_rows("seed-ref");
    for seed in [1u64, 7, 0xC0FFEE] {
        let dir = fresh_dir(&format!("seed-{seed}"));
        let chaos = Chaos::seeded(seed);
        let mut recovered = None;
        // Each failed lifecycle spends fault budget; the budget is
        // finite, so convergence is guaranteed long before this cap.
        for _ in 0..50 {
            match run_once(&dir, &chaos, 20) {
                Ok(rows) => {
                    recovered = Some(rows);
                    break;
                }
                Err(message) => {
                    // Typed failure under injected faults: the expected
                    // shape. Anything untyped would have panicked.
                    assert!(!message.is_empty());
                }
            }
        }
        let rows = recovered
            .unwrap_or_else(|| panic!("seed {seed} never converged; reproduce with this seed"));
        assert_eq!(
            rows, reference,
            "seed {seed} must converge to the reference rows"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn truncated_journal_is_the_typed_corruption_error() {
    let dir = fresh_dir("torn-journal");
    run_once(&dir, &Chaos::off(), 2).expect("reference lifecycle");

    // Tear the journal in half, as a torn non-atomic write would have.
    let jobs_dir = dir.join("jobs");
    let journal = std::fs::read_dir(&jobs_dir)
        .unwrap()
        .filter_map(Result::ok)
        .map(|e| e.path())
        .find(|p| p.extension().and_then(|e| e.to_str()) == Some("json"))
        .expect("a journal exists");
    let bytes = std::fs::read(&journal).unwrap();
    std::fs::write(&journal, &bytes[..bytes.len() / 2]).unwrap();

    // Startup must refuse with the typed corruption error (the CLI's
    // exit-8 path), never silently drop journaled work.
    let store = ArtifactStore::open(&dir).unwrap();
    match Supervisor::start(store, supervisor_config(2)) {
        Err(StoreError::Corrupt { path, .. }) => assert_eq!(path, journal),
        Err(other) => panic!("expected Corrupt, got {other}"),
        Ok(_) => panic!("a torn journal must fail startup"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn truncated_cell_result_self_heals_as_a_cache_miss() {
    let dir = fresh_dir("torn-result");
    let reference = run_once(&dir, &Chaos::off(), 2).expect("reference lifecycle");

    let spec = harness_spec();
    let store = ArtifactStore::open(&dir).unwrap();
    let key = spec.cell_identity(&spec.scenes[0], &spec.configs[0]);
    let result_path = store.cell_result_path(key);
    let bytes = std::fs::read(&result_path).unwrap();
    std::fs::write(&result_path, &bytes[..bytes.len() / 3]).unwrap();
    assert!(
        store.read_cell_result(key).is_none(),
        "a torn cell result must read as a cache miss, not an error"
    );
    // Leave the journal saying `running`, as a daemon killed mid-job
    // would have; the restart must recompute the torn cell.
    store
        .journal_job(spec.identity(), &spec, JobState::Running, None)
        .unwrap();
    drop(store);

    let healed = run_once(&dir, &Chaos::off(), 2).expect("self-healing lifecycle");
    assert_eq!(
        healed, reference,
        "recomputing a torn cell must reproduce identical digests"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn garbage_checkpoint_is_discarded_and_the_rerun_matches() {
    let dir = fresh_dir("bad-ck");
    let reference = run_once(&dir, &Chaos::off(), 2).expect("reference lifecycle");

    let spec = harness_spec();
    let store = ArtifactStore::open(&dir).unwrap();
    let key = spec.cell_identity(&spec.scenes[0], &spec.configs[0]);
    // Drop the cached result so the cell must re-run, and plant a
    // checkpoint of pure garbage for the resume path to trip over.
    std::fs::remove_file(store.cell_result_path(key)).unwrap();
    std::fs::write(store.checkpoint_path(key), b"\x00\xffnot a checkpoint").unwrap();
    store
        .journal_job(spec.identity(), &spec, JobState::Running, None)
        .unwrap();
    drop(store);

    let healed = run_once(&dir, &Chaos::off(), 2).expect("rerun lifecycle");
    assert_eq!(
        healed, reference,
        "a garbage checkpoint must be discarded, not trusted or fatal"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Spawns a real TCP daemon over `dir` with the given chaos config.
fn spawn_daemon(dir: PathBuf, chaos: Chaos) -> (String, std::thread::JoinHandle<()>) {
    let server = Server::bind(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        store_dir: dir,
        supervisor: supervisor_config(2),
        signal_flag: None,
        chaos,
    })
    .expect("bind daemon");
    let addr = server.local_addr().to_string();
    let runner = std::thread::spawn(move || {
        let _ = server.run();
    });
    (addr, runner)
}

#[test]
fn partial_reads_and_delays_do_not_perturb_the_protocol() {
    // Aggressive partial transfers and small delays on BOTH sides of
    // every socket: legal Read/Write behavior the frame layer must
    // already absorb, so the exchange must succeed bit-identically.
    let net_plan = |seed: u64| FaultPlan {
        fault_budget: u64::MAX,
        p_net_partial: 0.6,
        max_delay_ms: 1,
        ..FaultPlan::quiet(seed)
    };
    let dir = fresh_dir("net-partial");
    let server_chaos = Chaos::with_plan(net_plan(21));
    let (addr, runner) = spawn_daemon(dir.clone(), server_chaos.clone());
    let client_chaos = Chaos::with_plan(net_plan(22));
    let client = Client::with_chaos(&addr, &client_chaos);

    client.ping().expect("ping through partial transfers");
    let spec = JobSpec {
        configs: vec!["prefetch".to_string()],
        ..harness_spec()
    };
    let submitted = client.submit(spec).expect("submit");
    let done = client
        .wait(submitted.job, Duration::from_millis(10), Duration::from_secs(120))
        .expect("job finishes");
    assert_eq!(done.state, JobState::Done);
    let rows = client.result(done.job).expect("rows survive partial reads");
    assert_eq!(rows.len(), 1);
    assert!(
        client_chaos.faults_injected() + server_chaos.faults_injected() > 0,
        "the chaos actually perturbed the sockets"
    );

    client.shutdown().expect("shutdown");
    runner.join().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn connection_resets_surface_as_typed_client_errors() {
    let dir = fresh_dir("net-reset");
    let (addr, runner) = spawn_daemon(dir.clone(), Chaos::off());
    let chaos = Chaos::with_plan(FaultPlan {
        fault_budget: 2,
        p_net_reset: 1.0,
        ..FaultPlan::quiet(31)
    });
    let client = Client::with_chaos(&addr, &chaos);

    // Two resets in the budget: both calls must fail typed, not hang.
    for attempt in 0..2 {
        match client.ping() {
            Err(ClientError::Io(e)) => {
                assert_eq!(e.kind(), std::io::ErrorKind::ConnectionReset, "attempt {attempt}");
            }
            other => panic!("expected a typed reset on attempt {attempt}, got {other:?}"),
        }
    }
    assert_eq!(chaos.faults_injected(), 2);
    // Budget spent: the same client works again.
    client.ping().expect("ping after the fault budget is exhausted");

    Client::new(&addr).shutdown().expect("shutdown");
    runner.join().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}
