//! Wire-protocol robustness: table-driven decoder cases over
//! truncated, oversized, and garbage frames, plus a seeded fuzz loop.
//!
//! The server feeds every byte a client sends through `read_frame` +
//! `Request::decode`; these tests pin the contract that malformed
//! input always surfaces as a *typed* `ProtocolError` — never a panic,
//! never an unbounded allocation, never a silently accepted frame.

use rt_rng::{Rng, SmallRng};
use rt_served::protocol::{
    read_frame, parse_hex_id, ProtocolError, Request, Response, MAX_FRAME_BYTES,
};
use rt_served::JobSpec;
use std::io::BufReader;

/// One decoder expectation: a wire line and the error class it must
/// produce.
struct Case {
    name: &'static str,
    line: &'static str,
    expect: fn(&ProtocolError) -> bool,
}

#[test]
fn request_decoder_rejects_malformed_frames_with_typed_errors() {
    let cases = [
        Case {
            name: "empty line",
            line: "",
            expect: |e| matches!(e, ProtocolError::Garbage(_)),
        },
        Case {
            name: "not json",
            line: "GET / HTTP/1.1",
            expect: |e| matches!(e, ProtocolError::Garbage(_)),
        },
        Case {
            name: "truncated object",
            line: "{\"v\":1,\"cmd\":\"pi",
            expect: |e| matches!(e, ProtocolError::Garbage(_)),
        },
        Case {
            name: "json but not an object",
            line: "[1,2,3]",
            expect: |e| matches!(e, ProtocolError::NotAnObject),
        },
        Case {
            name: "scalar frame",
            line: "42",
            expect: |e| matches!(e, ProtocolError::NotAnObject),
        },
        Case {
            name: "missing version",
            line: "{\"cmd\":\"ping\"}",
            expect: |e| matches!(e, ProtocolError::MissingField { field: "v" }),
        },
        Case {
            name: "wrong version",
            line: "{\"v\":99,\"cmd\":\"ping\"}",
            expect: |e| matches!(e, ProtocolError::UnsupportedVersion { found: 99 }),
        },
        Case {
            name: "version not a number",
            line: "{\"v\":\"one\",\"cmd\":\"ping\"}",
            expect: |e| matches!(e, ProtocolError::BadField { field: "v", .. }),
        },
        Case {
            name: "missing command",
            line: "{\"v\":1}",
            expect: |e| matches!(e, ProtocolError::MissingField { field: "cmd" }),
        },
        Case {
            name: "unknown command",
            line: "{\"v\":1,\"cmd\":\"launch-missiles\"}",
            expect: |e| matches!(e, ProtocolError::UnknownCommand { .. }),
        },
        Case {
            name: "submit without spec",
            line: "{\"v\":1,\"cmd\":\"submit\"}",
            expect: |e| matches!(e, ProtocolError::MissingField { field: "spec" }),
        },
        Case {
            name: "submit with scalar spec",
            line: "{\"v\":1,\"cmd\":\"submit\",\"spec\":7}",
            expect: |e| matches!(e, ProtocolError::BadField { field: "spec", .. }),
        },
        Case {
            name: "submit without scenes",
            line: "{\"v\":1,\"cmd\":\"submit\",\"spec\":{}}",
            expect: |e| matches!(e, ProtocolError::MissingField { field: "scenes" }),
        },
        Case {
            name: "submit with non-string scenes",
            line: "{\"v\":1,\"cmd\":\"submit\",\"spec\":{\"scenes\":[1]}}",
            expect: |e| matches!(e, ProtocolError::BadField { field: "scenes", .. }),
        },
        Case {
            name: "submit with lossy res",
            line: "{\"v\":1,\"cmd\":\"submit\",\"spec\":{\"scenes\":[\"CAR\"],\"res\":1.5}}",
            expect: |e| matches!(e, ProtocolError::BadField { field: "res", .. }),
        },
        Case {
            name: "status without job",
            line: "{\"v\":1,\"cmd\":\"status\"}",
            expect: |e| matches!(e, ProtocolError::MissingField { field: "job" }),
        },
        Case {
            name: "status with decimal job id",
            line: "{\"v\":1,\"cmd\":\"status\",\"job\":\"12345\"}",
            expect: |e| matches!(e, ProtocolError::BadField { field: "job", .. }),
        },
        Case {
            name: "deeply nested bomb",
            line: "{\"v\":1,\"cmd\":\"submit\",\"spec\":[[[[[[[[[[[[[[[[[[[[[[[[[[[[[[[[[[[[[[[[[1]]]]]]]]]]]]]]]]]]]]]]]]]]]]]]]]]]]]]]]]]}",
            expect: |e| matches!(e, ProtocolError::Garbage(_)),
        },
    ];
    for case in cases {
        match Request::decode(case.line) {
            Err(e) => assert!(
                (case.expect)(&e),
                "{}: wrong error class: {e:?} for {:?}",
                case.name,
                case.line
            ),
            Ok(req) => panic!("{}: accepted {:?} as {req:?}", case.name, case.line),
        }
    }
}

#[test]
fn response_decoder_rejects_malformed_frames() {
    let cases: &[&str] = &[
        "",
        "null",
        "{\"reply\":{}}",                          // missing ok
        "{\"ok\":\"yes\"}",                        // ok not a bool
        "{\"ok\":true}",                           // missing reply
        "{\"ok\":true,\"reply\":{\"wat\":1}}",     // unknown reply shape
        "{\"ok\":false}",                          // error without kind
        "{\"ok\":false,\"error\":\"quantum\"}",    // unknown error kind
        "{\"ok\":true,\"reply\":{\"rows\":[{}]}}", // row missing fields
    ];
    for line in cases {
        assert!(
            Response::decode(line).is_err(),
            "accepted bad response {line:?}"
        );
    }
}

#[test]
fn oversized_frames_are_shed_incrementally() {
    // An attacker holding the connection open and streaming an endless
    // line must be cut off at the cap, not buffered forever.
    let payload = vec![b'x'; MAX_FRAME_BYTES * 3];
    let mut reader = BufReader::new(&payload[..]);
    match read_frame(&mut reader) {
        Err(ProtocolError::Oversized { len, max }) => {
            assert_eq!(max, MAX_FRAME_BYTES);
            assert!(len > MAX_FRAME_BYTES);
        }
        other => panic!("expected Oversized, got {other:?}"),
    }
}

#[test]
fn frames_after_an_oversized_line_are_still_readable() {
    // The oversized line is consumed up to (not past) its newline; the
    // caller can drop the connection, but the reader is not wedged.
    let mut payload = vec![b'x'; MAX_FRAME_BYTES + 10];
    payload.extend_from_slice(b"\n{\"v\":1}\n");
    let mut reader = BufReader::new(&payload[..]);
    assert!(matches!(
        read_frame(&mut reader),
        Err(ProtocolError::Oversized { .. })
    ));
}

/// Seeded fuzz loop: random mutations of valid frames plus raw random
/// bytes. Every input must decode to `Ok` or a typed error — the
/// assertion is simply "no panic, ever", which the harness enforces by
/// this test completing.
#[test]
fn fuzzed_frames_never_panic_the_decoder() {
    let mut rng = SmallRng::seed_from_u64(0x5eed_f00d);
    let seeds: Vec<String> = vec![
        Request::Ping.encode(),
        Request::Shutdown.encode(),
        Request::Status { job: 0xdead_beef }.encode(),
        Request::Submit(JobSpec {
            scenes: vec!["CAR".to_string(), "BUNNY".to_string()],
            configs: vec!["baseline".to_string(), "prefetch".to_string()],
            detail: 0.25,
            res: 16,
            workload: "diffuse".to_string(),
            treelet_bytes: 1024,
            max_cycles: Some(100_000),
            timeout_ms: Some(5_000),
            checkpoint_every: 1_000,
        })
        .encode(),
        Response::Pong.encode(),
        Response::ShuttingDown.encode(),
    ];

    for round in 0..5_000 {
        let line: String = if rng.gen_bool(0.7) {
            // Mutate a valid frame: truncate, splice, or corrupt bytes.
            let seed = &seeds[rng.gen_range(0..seeds.len())];
            let mut bytes = seed.clone().into_bytes();
            match rng.gen_range(0..4u32) {
                0 => {
                    // Truncate at a random point.
                    let cut = rng.gen_range(0..bytes.len());
                    bytes.truncate(cut);
                }
                1 => {
                    // Flip a handful of bytes.
                    for _ in 0..rng.gen_range(1..8u32) {
                        let at = rng.gen_range(0..bytes.len());
                        bytes[at] = rng.gen_range(0..256u32) as u8;
                    }
                }
                2 => {
                    // Duplicate a prefix onto the end.
                    let at = rng.gen_range(0..bytes.len());
                    let chunk: Vec<u8> = bytes[..at].to_vec();
                    bytes.extend_from_slice(&chunk);
                }
                _ => {
                    // Reverse the frame wholesale.
                    bytes.reverse();
                }
            }
            String::from_utf8_lossy(&bytes).into_owned()
        } else {
            // Raw random printable-ish garbage.
            let len = rng.gen_range(0..256usize);
            (0..len)
                .map(|_| rng.gen_range(0x20..0x7fu8) as char)
                .collect()
        };

        // Must return, never panic — both directions of the protocol.
        let _ = Request::decode(&line);
        let _ = Response::decode(&line);
        // And a valid round-trip must stay valid when decode succeeds.
        if let Ok(req) = Request::decode(&line) {
            let reencoded = req.encode();
            assert_eq!(
                Request::decode(&reencoded).expect("re-encode of accepted frame decodes"),
                req,
                "round {round}: {line:?}"
            );
        }
    }
}

#[test]
fn hex_ids_survive_fuzzing() {
    let mut rng = SmallRng::seed_from_u64(42);
    for _ in 0..2_000 {
        let len = rng.gen_range(0..24usize);
        let s: String = (0..len)
            .map(|_| rng.gen_range(0x20..0x7fu8) as char)
            .collect();
        // Never panics; round-trips exactly when it parses.
        if let Some(id) = parse_hex_id(&s) {
            assert_eq!(
                parse_hex_id(&rt_served::protocol::hex_id(id)),
                Some(id)
            );
        }
    }
}
