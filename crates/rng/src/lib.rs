//! Deterministic pseudo-randomness for the treelet-prefetching workspace.
//!
//! Everything random in the reproduction — scene placement, workload
//! sampling, diffuse bounces, fault injection, property tests — must be
//! reproducible from a seed, and the workspace must build with **zero
//! external dependencies** (evaluation machines have no network access to
//! a crates registry). This crate provides both:
//!
//! - [`SmallRng`] — a small, fast xoshiro256++ generator with explicit
//!   seeding and a rand-style API subset ([`Rng::gen`],
//!   [`Rng::gen_range`], [`Rng::gen_bool`]),
//! - [`prop`] — a minimal property-testing harness (`forall`) that
//!   replaces `proptest` for the workspace's randomized invariant tests.
//!
//! The generator is xoshiro256++ (Blackman & Vigna), seeded through
//! SplitMix64 so that every `u64` seed — including 0 — yields a
//! well-mixed state. The sequence is stable across platforms and
//! releases: identical seeds give identical streams, which the
//! simulator's determinism guarantees rely on.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod prop;

/// SplitMix64 step: the recommended seeder for xoshiro generators.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A small, fast, seedable pseudo-random generator (xoshiro256++).
///
/// Not cryptographically secure — it exists for reproducible workloads
/// and tests, mirroring the role `rand::rngs::SmallRng` played before
/// the workspace went dependency-free.
///
/// # Examples
///
/// ```
/// use rt_rng::{Rng, SmallRng};
///
/// let mut a = SmallRng::seed_from_u64(7);
/// let mut b = SmallRng::seed_from_u64(7);
/// assert_eq!(a.gen::<f32>(), b.gen::<f32>());
/// let die = a.gen_range(1..7usize);
/// assert!((1..7).contains(&die));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SmallRng {
    s: [u64; 4],
}

impl SmallRng {
    /// Creates a generator from a 64-bit seed. Any seed (including 0)
    /// produces a well-mixed, non-degenerate state.
    pub fn seed_from_u64(seed: u64) -> SmallRng {
        let mut sm = seed;
        SmallRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// The raw xoshiro256++ state, for checkpointing.
    ///
    /// Together with [`SmallRng::from_state`] this lets a simulator
    /// snapshot capture an in-flight generator and restore it so the
    /// resumed stream is bit-identical to the uninterrupted one.
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Rebuilds a generator from a state captured with
    /// [`SmallRng::state`].
    pub fn from_state(s: [u64; 4]) -> SmallRng {
        SmallRng { s }
    }

    /// The next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl Rng for SmallRng {
    fn next_u64(&mut self) -> u64 {
        SmallRng::next_u64(self)
    }
}

/// The rand-style sampling interface: raw bits plus `gen`, `gen_range`,
/// and `gen_bool` conveniences.
pub trait Rng {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// A uniformly distributed value of `T` (floats land in `[0, 1)`).
    fn gen<T: Sample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// A uniform value in `[range.start, range.end)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T: SampleRange>(&mut self, range: core::ops::Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        self.gen::<f64>() < p
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types [`Rng::gen`] can produce uniformly.
pub trait Sample: Sized {
    /// Draws one uniform value from `rng`.
    fn sample<R: Rng>(rng: &mut R) -> Self;
}

impl Sample for u64 {
    fn sample<R: Rng>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Sample for u32 {
    fn sample<R: Rng>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Sample for bool {
    fn sample<R: Rng>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Sample for f32 {
    /// Uniform in `[0, 1)` using the top 24 bits.
    fn sample<R: Rng>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Sample for f64 {
    /// Uniform in `[0, 1)` using the top 53 bits.
    fn sample<R: Rng>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Types [`Rng::gen_range`] can sample over a half-open range.
pub trait SampleRange: Sized {
    /// Draws one uniform value in `[range.start, range.end)`.
    fn sample_range<R: Rng>(rng: &mut R, range: core::ops::Range<Self>) -> Self;
}

/// Unbiased-enough integer range sampling via 128-bit multiply-shift
/// (Lemire's method without the rejection step — the bias is below
/// `span / 2^64`, irrelevant for workload generation and tests).
fn sample_u64_span<R: Rng>(rng: &mut R, span: u64) -> u64 {
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for $t {
            fn sample_range<R: Rng>(rng: &mut R, range: core::ops::Range<$t>) -> $t {
                assert!(range.start < range.end, "gen_range needs a non-empty range");
                let span = (range.end - range.start) as u64;
                range.start + sample_u64_span(rng, span) as $t
            }
        }
    )*};
}

int_sample_range!(usize, u64, u32, u16, u8);

macro_rules! signed_sample_range {
    ($($t:ty as $u:ty),*) => {$(
        impl SampleRange for $t {
            fn sample_range<R: Rng>(rng: &mut R, range: core::ops::Range<$t>) -> $t {
                assert!(range.start < range.end, "gen_range needs a non-empty range");
                let span = (range.end as i64).wrapping_sub(range.start as i64) as u64;
                (range.start as i64).wrapping_add(sample_u64_span(rng, span) as i64) as $t
            }
        }
    )*};
}

signed_sample_range!(i64 as u64, i32 as u32);

impl SampleRange for f32 {
    fn sample_range<R: Rng>(rng: &mut R, range: core::ops::Range<f32>) -> f32 {
        assert!(range.start < range.end, "gen_range needs a non-empty range");
        let u: f32 = Sample::sample(rng);
        range.start + (range.end - range.start) * u
    }
}

impl SampleRange for f64 {
    fn sample_range<R: Rng>(rng: &mut R, range: core::ops::Range<f64>) -> f64 {
        assert!(range.start < range.end, "gen_range needs a non-empty range");
        let u: f64 = Sample::sample(rng);
        range.start + (range.end - range.start) * u
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_seeds_give_identical_streams() {
        let mut a = SmallRng::seed_from_u64(0xdead_beef);
        let mut b = SmallRng::seed_from_u64(0xdead_beef);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn zero_seed_is_not_degenerate() {
        let mut r = SmallRng::seed_from_u64(0);
        let values: Vec<u64> = (0..8).map(|_| r.next_u64()).collect();
        assert!(values.iter().any(|&v| v != 0));
        assert!(values.windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    fn floats_stay_in_unit_interval() {
        let mut r = SmallRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let x: f32 = r.gen();
            assert!((0.0..1.0).contains(&x));
            let y: f64 = r.gen();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let i = r.gen_range(3..17usize);
            assert!((3..17).contains(&i));
            let f = r.gen_range(-2.5f32..4.5);
            assert!((-2.5..4.5).contains(&f));
            let s = r.gen_range(-10..10i32);
            assert!((-10..10).contains(&s));
        }
    }

    #[test]
    fn gen_range_covers_small_ranges() {
        let mut r = SmallRng::seed_from_u64(11);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[r.gen_range(0..4usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = SmallRng::seed_from_u64(5);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "got {hits}");
    }

    #[test]
    #[should_panic(expected = "non-empty range")]
    fn empty_range_panics() {
        let mut r = SmallRng::seed_from_u64(1);
        let _ = r.gen_range(5..5usize);
    }

    #[test]
    fn mean_of_unit_floats_is_centered() {
        let mut r = SmallRng::seed_from_u64(99);
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| r.gen::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn rng_works_through_mut_reference() {
        fn draw<R: Rng>(mut rng: R) -> u64 {
            rng.next_u64()
        }
        let mut r = SmallRng::seed_from_u64(3);
        let direct = r.clone().next_u64();
        assert_eq!(draw(&mut r), direct);
    }
}
