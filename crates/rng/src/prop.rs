//! A minimal property-testing harness.
//!
//! Replaces the `proptest` dev-dependency so the workspace's randomized
//! invariant tests run without any external crates. The model is
//! deliberately simple: a property is a closure that receives a seeded
//! [`SmallRng`], generates its own inputs, and asserts. [`forall`] runs
//! it for a number of cases with distinct, deterministic seeds and — on
//! failure — reports the case index and seed so the failure replays
//! exactly (no shrinking; rerun the single seed and debug).
//!
//! ```
//! use rt_rng::prop::forall;
//! use rt_rng::Rng;
//!
//! forall("addition commutes", 64, |rng| {
//!     let (a, b) = (rng.gen::<u32>() as u64, rng.gen::<u32>() as u64);
//!     assert_eq!(a + b, b + a);
//! });
//! ```

use crate::SmallRng;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

/// Base seed for the deterministic per-case seeds. Override with the
/// `RT_PROP_SEED` environment variable to explore a different region of
/// the input space (CI keeps the default so failures reproduce).
fn base_seed() -> u64 {
    std::env::var("RT_PROP_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0x7265_7072_6f70_5f31)
}

/// Seed of case `index` under base seed `base` (public so a failing case
/// can be replayed in isolation).
pub fn case_seed(base: u64, index: u64) -> u64 {
    // One splitmix-style mix is enough to decorrelate consecutive cases.
    let mut z = base ^ index.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z ^ (z >> 31)
}

/// Runs `property` for `cases` deterministic seeds, panicking with the
/// failing case's seed on the first failure.
///
/// # Panics
///
/// Re-raises the property's panic after printing the case index and seed.
pub fn forall<F>(name: &str, cases: u64, mut property: F)
where
    F: FnMut(&mut SmallRng),
{
    let base = base_seed();
    for index in 0..cases {
        let seed = case_seed(base, index);
        let mut rng = SmallRng::seed_from_u64(seed);
        if let Err(panic) = catch_unwind(AssertUnwindSafe(|| property(&mut rng))) {
            eprintln!(
                "property {name:?} failed at case {index}/{cases} \
                 (seed {seed:#x}; rerun with RT_PROP_SEED={base} or \
                 SmallRng::seed_from_u64({seed:#x}))"
            );
            resume_unwind(panic);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rng;

    #[test]
    fn passing_property_runs_all_cases() {
        let mut ran = 0u64;
        forall("counts", 32, |_| ran += 1);
        assert_eq!(ran, 32);
    }

    #[test]
    fn failing_property_reports_and_panics() {
        let result = catch_unwind(AssertUnwindSafe(|| {
            forall("fails eventually", 64, |rng| {
                assert!(rng.gen::<f32>() < 0.9, "drew a large value");
            })
        }));
        assert!(result.is_err(), "property should have failed");
    }

    #[test]
    fn case_seeds_are_distinct() {
        let base = base_seed();
        let mut seeds: Vec<u64> = (0..256).map(|i| case_seed(base, i)).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), 256);
    }

    #[test]
    fn failure_replays_from_its_seed() {
        // A property that fails for exactly one recorded seed must fail
        // again when rerun with that seed.
        let mut failing_seed = None;
        for index in 0..512 {
            let seed = case_seed(base_seed(), index);
            let mut rng = SmallRng::seed_from_u64(seed);
            if rng.gen::<f64>() > 0.99 {
                failing_seed = Some(seed);
                break;
            }
        }
        let seed = failing_seed.expect("some case should draw > 0.99");
        let mut rng = SmallRng::seed_from_u64(seed);
        assert!(rng.gen::<f64>() > 0.99);
    }
}
