//! Cycle-level GPU memory-system substrate for the treelet-prefetching
//! reproduction.
//!
//! The paper evaluates on Vulkan-Sim, a C++ GPU simulator. This crate
//! rebuilds the pieces of that substrate the RT unit interacts with:
//!
//! - [`Cache`] — MSHR-equipped LRU caches (fully associative L1,
//!   set-associative L2) that track prefetch provenance for the paper's
//!   Fig. 12 breakdown and Fig. 20 effectiveness classification,
//! - [`Dram`] — a 4-channel DRAM with a 256-byte partition stride and
//!   serialized per-channel bursts (the Fig. 15 load-balance mechanism),
//! - [`MemorySystem`] — the composed hierarchy, advanced one core cycle
//!   at a time, with the 1365 MHz / 3500 MHz clock-domain split of the
//!   paper's Table 1.
//!
//! The RT unit itself (warp buffer, treelet prefetcher, schedulers) lives
//! in the `treelet-rt` crate and drives this memory system.
//!
//! # Examples
//!
//! ```
//! use rt_gpu_sim::{AccessKind, FillOrigin, MemConfig, MemorySystem};
//!
//! let mut mem = MemorySystem::new(MemConfig::paper_default(), 1);
//! let issue = mem.access(0, 0x1_0000, FillOrigin::Demand, AccessKind::Node);
//! let req = issue.request_id().unwrap();
//! while !mem.drain_completed(0).contains(&req) {
//!     mem.tick();
//! }
//! assert!(mem.cycle() > 0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod cache;
mod codec;
mod dram;
mod memsys;
mod table;

pub use cache::{Cache, CacheStats, FillOrigin, Organization, PrefetchEffect, ProbeOutcome};
pub use codec::{fnv1a64, ByteReader, ByteWriter, DecodeError};
pub use dram::{Dram, DramConfig};
pub use memsys::{
    AccessKind, AuditReport, FaultInjection, Issue, LatencyHistogram, MemConfig, MemStats,
    MemorySystem, RequestId,
};
pub use table::{
    CountTable, CountVec, FxBuildHasher, FxHashMap, FxHashSet, FxHasher, IdWindow,
};
