//! Dense keyed tables and a fast non-cryptographic hasher for the
//! simulator hot path.
//!
//! The cycle loop keys almost everything by values that are either
//! *dense* (monotonically allocated [`RequestId`](crate::RequestId)s,
//! small treelet ids) or *well mixed already* (64-byte-aligned cache-line
//! addresses). `std`'s default SipHash spends more time hashing such keys
//! than the table operation itself costs, so this module provides:
//!
//! - [`FxHasher`] — a hand-rolled rotate-xor-multiply hasher (the
//!   firefox/rustc "FxHash" construction) with [`FxHashMap`] /
//!   [`FxHashSet`] aliases for the residual true-hash cases. Hand-rolled
//!   rather than imported, per the crate's zero-dependency policy.
//! - [`IdWindow`] — a sliding window over monotonically allocated ids:
//!   O(1) insert/lookup/remove by direct indexing, iteration in id
//!   order for free (canonical encode order without sorting).
//! - [`CountTable`] — dense per-key counters with a sparse set of the
//!   nonzero keys, so voting scans touch only live entries.
//! - [`CountVec`] — a tiny linear-probe counter multiset for per-slot
//!   treelet counts (a warp holds at most 32 rays, so linear scans win).
//!
//! None of these structures define the simulator's architectural state
//! encoding: callers encode their *contents* in the same canonical
//! (sorted or id-ordered) form the previous `HashMap`-based code used,
//! so state digests are unaffected by the representation swap.

use std::collections::{HashMap, HashSet, VecDeque};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplier of the FxHash rotate-xor-multiply round (the golden-ratio
/// constant used by rustc's hasher).
const FX_SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// A fast, non-cryptographic streaming hasher for in-memory tables.
///
/// Not DoS-resistant — only use for keys the simulator itself allocates
/// (request ids, line addresses, treelet ids), never attacker-controlled
/// input.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(FX_SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(tail) | (rest.len() as u64) << 56);
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` using [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` using [`FxHasher`].
pub type FxHashSet<K> = HashSet<K, FxBuildHasher>;

/// A sliding-window table keyed by monotonically allocated `u64` ids.
///
/// Ids are allocated in increasing order and removed once completed, so
/// live ids cluster in a window `[base, base + slots.len())`. Lookups
/// index directly into that window; removal compacts the window head so
/// memory tracks the span of *live* ids, not the total ever allocated.
/// Iteration yields entries in ascending id order, which is exactly the
/// canonical order the state codec wants.
#[derive(Debug, Clone, Default)]
pub struct IdWindow<V> {
    base: u64,
    slots: VecDeque<Option<V>>,
    live: usize,
}

impl<V> IdWindow<V> {
    /// An empty window.
    pub fn new() -> IdWindow<V> {
        IdWindow {
            base: 0,
            slots: VecDeque::new(),
            live: 0,
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True when no entry is live.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Inserts `id → value`, returning the previous value if `id` was
    /// already present.
    ///
    /// # Panics
    ///
    /// Panics if `id` precedes an id already compacted away (ids must be
    /// allocated monotonically; re-inserting an old id after later ids
    /// were removed past it would corrupt the window).
    pub fn insert(&mut self, id: u64, value: V) -> Option<V> {
        if self.slots.is_empty() {
            self.base = id;
        }
        assert!(id >= self.base, "IdWindow ids must not move backwards");
        let idx = (id - self.base) as usize;
        while self.slots.len() <= idx {
            self.slots.push_back(None);
        }
        let prev = self.slots[idx].replace(value);
        if prev.is_none() {
            self.live += 1;
        }
        prev
    }

    /// Looks up `id`.
    pub fn get(&self, id: u64) -> Option<&V> {
        let idx = id.checked_sub(self.base)? as usize;
        self.slots.get(idx)?.as_ref()
    }

    /// Removes and returns the value under `id`.
    pub fn remove(&mut self, id: u64) -> Option<V> {
        let idx = id.checked_sub(self.base)? as usize;
        let taken = self.slots.get_mut(idx)?.take();
        if taken.is_some() {
            self.live -= 1;
            while let Some(None) = self.slots.front() {
                self.slots.pop_front();
                self.base += 1;
            }
        }
        taken
    }

    /// True if `id` is live.
    pub fn contains(&self, id: u64) -> bool {
        self.get(id).is_some()
    }

    /// Iterates live entries in ascending id order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &V)> {
        let base = self.base;
        self.slots
            .iter()
            .enumerate()
            .filter_map(move |(i, slot)| slot.as_ref().map(|v| (base + i as u64, v)))
    }

    /// Removes every entry.
    pub fn clear(&mut self) {
        self.slots.clear();
        self.base = 0;
        self.live = 0;
    }
}

/// Dense per-key counters (keys are small `u32`s, e.g. treelet ids) with
/// a sparse set of the nonzero keys.
///
/// `increment`/`decrement` are O(1); iteration visits only nonzero keys,
/// so majority-vote scans cost O(live treelets), not O(all treelets) and
/// not a hash walk. Decrementing to zero removes the key from the sparse
/// set — mirroring the old `HashMap` code, which removed zero entries —
/// so the canonical sorted encoding of the nonzero pairs is byte-for-byte
/// what `encode_counts` produced before.
#[derive(Debug, Clone, Default)]
pub struct CountTable {
    counts: Vec<u32>,
    /// Nonzero keys in arbitrary order.
    nonzero: Vec<u32>,
    /// `pos[key]` = index of `key` in `nonzero` (valid only while
    /// `counts[key] > 0`).
    pos: Vec<u32>,
}

impl CountTable {
    /// An empty table sized for keys `< keys` without reallocation.
    pub fn with_key_capacity(keys: usize) -> CountTable {
        CountTable {
            counts: vec![0; keys],
            nonzero: Vec::new(),
            pos: vec![0; keys],
        }
    }

    fn ensure_key(&mut self, key: u32) {
        let needed = key as usize + 1;
        if self.counts.len() < needed {
            self.counts.resize(needed, 0);
            self.pos.resize(needed, 0);
        }
    }

    /// Adds one to `key`'s count.
    pub fn increment(&mut self, key: u32) {
        self.ensure_key(key);
        let k = key as usize;
        if self.counts[k] == 0 {
            self.pos[k] = self.nonzero.len() as u32;
            self.nonzero.push(key);
        }
        self.counts[k] += 1;
    }

    /// Adds `n` to `key`'s count (no-op for `n == 0`) — the bulk form
    /// the state decoder uses to rebuild a table from encoded pairs.
    pub fn add(&mut self, key: u32, n: u32) {
        if n == 0 {
            return;
        }
        self.ensure_key(key);
        let k = key as usize;
        if self.counts[k] == 0 {
            self.pos[k] = self.nonzero.len() as u32;
            self.nonzero.push(key);
        }
        self.counts[k] += n;
    }

    /// Subtracts one from `key`'s count.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the count is already zero (the caller
    /// tracks residency; a mismatch is a simulator bug).
    pub fn decrement(&mut self, key: u32) {
        let k = key as usize;
        debug_assert!(k < self.counts.len() && self.counts[k] > 0);
        self.counts[k] -= 1;
        if self.counts[k] == 0 {
            let at = self.pos[k] as usize;
            self.nonzero.swap_remove(at);
            if let Some(&moved) = self.nonzero.get(at) {
                self.pos[moved as usize] = at as u32;
            }
        }
    }

    /// `key`'s count (zero for never-seen keys).
    pub fn get(&self, key: u32) -> u32 {
        self.counts.get(key as usize).copied().unwrap_or(0)
    }

    /// Number of keys with a nonzero count.
    pub fn len_nonzero(&self) -> usize {
        self.nonzero.len()
    }

    /// True when every count is zero.
    pub fn is_empty(&self) -> bool {
        self.nonzero.is_empty()
    }

    /// Iterates `(key, count)` over nonzero keys in arbitrary order.
    pub fn iter_nonzero(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        self.nonzero
            .iter()
            .map(move |&k| (k, self.counts[k as usize]))
    }

    /// Nonzero `(key, count)` pairs sorted by key — the canonical
    /// encoding order.
    pub fn sorted_pairs(&self) -> Vec<(u32, u32)> {
        let mut pairs: Vec<(u32, u32)> = self.iter_nonzero().collect();
        pairs.sort_unstable();
        pairs
    }

    /// Resets every count to zero, keeping capacity.
    pub fn clear(&mut self) {
        for &k in &self.nonzero {
            self.counts[k as usize] = 0;
        }
        self.nonzero.clear();
    }
}

/// A tiny counter multiset held in a linear vector — for per-warp-slot
/// treelet counts, where at most a warp's worth of distinct keys are
/// ever live and a linear scan beats any hash.
#[derive(Debug, Clone, Default)]
pub struct CountVec {
    entries: Vec<(u32, u32)>,
}

impl CountVec {
    /// An empty multiset with room for `cap` distinct keys.
    pub fn with_capacity(cap: usize) -> CountVec {
        CountVec {
            entries: Vec::with_capacity(cap),
        }
    }

    /// Adds one to `key`'s count.
    pub fn increment(&mut self, key: u32) {
        if let Some(e) = self.entries.iter_mut().find(|e| e.0 == key) {
            e.1 += 1;
        } else {
            self.entries.push((key, 1));
        }
    }

    /// Adds `n` to `key`'s count (no-op for `n == 0`) — the bulk form
    /// the state decoder uses to rebuild a multiset from encoded pairs.
    pub fn add(&mut self, key: u32, n: u32) {
        if n == 0 {
            return;
        }
        if let Some(e) = self.entries.iter_mut().find(|e| e.0 == key) {
            e.1 += n;
        } else {
            self.entries.push((key, n));
        }
    }

    /// Subtracts one from `key`'s count, dropping the entry at zero.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `key` has no count.
    pub fn decrement(&mut self, key: u32) {
        let at = self.entries.iter().position(|e| e.0 == key);
        debug_assert!(at.is_some(), "decrement of absent key {key}");
        if let Some(at) = at {
            self.entries[at].1 -= 1;
            if self.entries[at].1 == 0 {
                self.entries.swap_remove(at);
            }
        }
    }

    /// `key`'s count (zero when absent).
    pub fn get(&self, key: u32) -> u32 {
        self.entries
            .iter()
            .find(|e| e.0 == key)
            .map_or(0, |e| e.1)
    }

    /// True when every count is zero.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates `(key, count)` pairs in arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        self.entries.iter().copied()
    }

    /// Nonzero `(key, count)` pairs sorted by key — the canonical
    /// encoding order.
    pub fn sorted_pairs(&self) -> Vec<(u32, u32)> {
        let mut pairs = self.entries.clone();
        pairs.sort_unstable();
        pairs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::BuildHasher;

    #[test]
    fn fx_hasher_is_deterministic_and_spreads_keys() {
        let build = FxBuildHasher::default();
        let a = build.hash_one(0x1234_5678_9abc_def0u64);
        let b = build.hash_one(0x1234_5678_9abc_def0u64);
        assert_eq!(a, b);
        // Line addresses differing only in low bits must not collide in
        // the high bits the table uses.
        let h1 = build.hash_one(0x1_0000u64);
        let h2 = build.hash_one(0x1_0040u64);
        assert_ne!(h1, h2);
        // Byte-stream hashing covers the non-word tail.
        let h3 = build.hash_one("abc");
        let h4 = build.hash_one("abd");
        assert_ne!(h3, h4);
    }

    #[test]
    fn fx_map_behaves_like_a_map() {
        let mut m: FxHashMap<u64, u32> = FxHashMap::default();
        for i in 0..1000u64 {
            m.insert(i * 64, i as u32);
        }
        assert_eq!(m.len(), 1000);
        assert_eq!(m.get(&(500 * 64)), Some(&500));
        assert_eq!(m.remove(&(500 * 64)), Some(500));
        assert_eq!(m.len(), 999);
    }

    #[test]
    fn id_window_inserts_and_compacts() {
        let mut w: IdWindow<&'static str> = IdWindow::new();
        assert!(w.is_empty());
        assert_eq!(w.insert(10, "a"), None);
        assert_eq!(w.insert(12, "b"), None);
        assert_eq!(w.insert(11, "c"), None);
        assert_eq!(w.len(), 3);
        assert_eq!(w.get(11), Some(&"c"));
        assert_eq!(w.get(9), None);
        assert_eq!(w.get(13), None);
        // Removing the head compacts the window base forward.
        assert_eq!(w.remove(10), Some("a"));
        assert_eq!(w.remove(10), None);
        assert_eq!(w.len(), 2);
        assert_eq!(w.get(11), Some(&"c"));
        // Out-of-order removal leaves holes that compact later.
        assert_eq!(w.remove(12), Some("b"));
        assert_eq!(w.remove(11), Some("c"));
        assert!(w.is_empty());
        // After full drain, a fresh (larger) id restarts the window.
        assert_eq!(w.insert(100, "d"), None);
        assert_eq!(w.get(100), Some(&"d"));
    }

    #[test]
    fn id_window_iterates_in_id_order() {
        let mut w = IdWindow::new();
        for id in [3u64, 4, 7, 9] {
            w.insert(id, id * 2);
        }
        w.remove(4);
        let got: Vec<(u64, u64)> = w.iter().map(|(k, &v)| (k, v)).collect();
        assert_eq!(got, vec![(3, 6), (7, 14), (9, 18)]);
    }

    #[test]
    fn id_window_replace_returns_previous() {
        let mut w = IdWindow::new();
        assert_eq!(w.insert(5, 1), None);
        assert_eq!(w.insert(5, 2), Some(1));
        assert_eq!(w.len(), 1);
        assert_eq!(w.remove(5), Some(2));
    }

    #[test]
    #[should_panic(expected = "move backwards")]
    fn id_window_rejects_backwards_ids() {
        let mut w = IdWindow::new();
        w.insert(10, ());
        w.remove(10);
        w.insert(20, ());
        w.insert(5, ());
    }

    #[test]
    fn count_table_counts_and_tracks_nonzero() {
        let mut t = CountTable::with_key_capacity(4);
        t.increment(2);
        t.increment(2);
        t.increment(7); // beyond initial capacity: grows
        assert_eq!(t.get(2), 2);
        assert_eq!(t.get(7), 1);
        assert_eq!(t.get(0), 0);
        assert_eq!(t.len_nonzero(), 2);
        t.decrement(2);
        t.decrement(2);
        assert_eq!(t.get(2), 0);
        assert_eq!(t.sorted_pairs(), vec![(7, 1)]);
        t.decrement(7);
        assert!(t.is_empty());
    }

    #[test]
    fn count_table_sorted_pairs_match_hashmap_encoding_order() {
        let mut t = CountTable::default();
        let mut reference = std::collections::HashMap::new();
        for key in [9u32, 1, 5, 9, 5, 5] {
            t.increment(key);
            *reference.entry(key).or_insert(0u32) += 1;
        }
        let mut expect: Vec<(u32, u32)> = reference.into_iter().collect();
        expect.sort_unstable();
        assert_eq!(t.sorted_pairs(), expect);
    }

    #[test]
    fn count_vec_mirrors_count_table() {
        let mut v = CountVec::with_capacity(8);
        let mut t = CountTable::default();
        for key in [3u32, 3, 1, 8, 8, 8] {
            v.increment(key);
            t.increment(key);
        }
        assert_eq!(v.sorted_pairs(), t.sorted_pairs());
        v.decrement(8);
        t.decrement(8);
        v.decrement(1);
        t.decrement(1);
        assert_eq!(v.get(1), 0);
        assert_eq!(v.sorted_pairs(), t.sorted_pairs());
    }
}
