//! Cycle-level cache model with MSHRs, LRU replacement, and
//! prefetch-provenance tracking.
//!
//! The cache distinguishes lines brought in by demand loads from lines
//! brought in by prefetches so the simulator can reproduce the paper's
//! L1 breakdown (Fig. 12) and prefetch-effectiveness classification
//! (Fig. 20).
//!
//! Storage is organization-specific (see [`Storage`]): the fully
//! associative L1 keeps a hash map of resident lines plus a lazy,
//! *bounded* min-heap of `(last_use, line)` eviction candidates, while
//! the set-associative L2 holds its lines directly in per-set way
//! arrays — a probe is a set-index computation plus a ≤`ways`-entry
//! scan, with no hashing at all.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::codec::{ByteReader, ByteWriter, DecodeError};
use crate::table::{FxHashMap, FxHashSet};

/// Who caused a line to be (or be being) fetched.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FillOrigin {
    /// An ordinary demand load.
    Demand,
    /// The treelet (or comparison) prefetcher.
    Prefetch,
}

pub(crate) fn encode_origin(origin: FillOrigin, w: &mut ByteWriter) {
    w.put_u8(match origin {
        FillOrigin::Demand => 0,
        FillOrigin::Prefetch => 1,
    });
}

pub(crate) fn decode_origin(r: &mut ByteReader<'_>) -> Result<FillOrigin, DecodeError> {
    match r.take_u8()? {
        0 => Ok(FillOrigin::Demand),
        1 => Ok(FillOrigin::Prefetch),
        t => Err(DecodeError::malformed(format!("unknown fill origin tag {t}"))),
    }
}

/// Outcome of a cache probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProbeOutcome {
    /// The line is resident; `filled_by_prefetch` reports its provenance
    /// at the time of the hit.
    Hit {
        /// `true` if the line was brought in by a prefetch and this is a
        /// demand read of prefetched data.
        filled_by_prefetch: bool,
    },
    /// The line is being fetched already; the access is merged into the
    /// existing MSHR entry.
    PendingHit,
    /// The line is absent; a new MSHR entry was allocated and the caller
    /// must forward the request upstream.
    Miss,
    /// The line is absent and no MSHR entry is available; the caller must
    /// retry later.
    NoMshr,
}

/// Replacement organization.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Organization {
    /// One set holding `lines` ways (the paper's fully associative L1).
    FullyAssociative,
    /// `sets` sets of `ways` lines each (the paper's 16-way L2).
    SetAssociative {
        /// Number of sets; the set index is `(addr / line) % sets`.
        sets: u64,
    },
}

/// Classification counters for prefetch effectiveness (paper Fig. 20).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PrefetchEffect {
    /// Prefetch found the line already present or pending from a demand
    /// load.
    pub too_late: u64,
    /// A demand load merged with an in-flight prefetch (pending hit on a
    /// prefetch).
    pub late: u64,
    /// A demand load hit a resident line brought in by a prefetch.
    pub timely: u64,
    /// The prefetched line was evicted unread and later demanded again.
    pub early: u64,
    /// Prefetched lines never read by any demand load.
    pub unused: u64,
}

impl PrefetchEffect {
    /// Total classified prefetches.
    pub fn total(&self) -> u64 {
        self.too_late + self.late + self.timely + self.early + self.unused
    }
}

/// Demand access counters (paper Fig. 12 breakdown).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Demand hits on lines brought in by prefetches.
    pub demand_hits_on_prefetch: u64,
    /// Demand hits on lines brought in by demand loads.
    pub demand_hits_on_demand: u64,
    /// Demand accesses merged into an in-flight fetch.
    pub demand_pending_hits: u64,
    /// Demand misses that allocated an MSHR.
    pub demand_misses: u64,
    /// Prefetch probes issued to this cache.
    pub prefetch_probes: u64,
    /// Prefetch probes that allocated an MSHR (actual prefetch fills
    /// requested upstream).
    pub prefetch_misses: u64,
    /// Accesses rejected because the MSHR file was full.
    pub mshr_rejections: u64,
    /// Lines evicted.
    pub evictions: u64,
}

impl CacheStats {
    /// All demand accesses that probed the cache.
    pub fn demand_accesses(&self) -> u64 {
        self.demand_hits_on_prefetch
            + self.demand_hits_on_demand
            + self.demand_pending_hits
            + self.demand_misses
    }

    /// Demand hit rate (hits / accesses), zero when idle.
    pub fn demand_hit_rate(&self) -> f64 {
        let total = self.demand_accesses();
        if total == 0 {
            return 0.0;
        }
        (self.demand_hits_on_prefetch + self.demand_hits_on_demand) as f64 / total as f64
    }
}

#[derive(Debug)]
struct Line {
    last_use: u64,
    origin: FillOrigin,
    /// For prefetched lines: has any demand load read it yet?
    read_by_demand: bool,
}

#[derive(Debug)]
struct MshrEntry {
    origin: FillOrigin,
    /// Set when a demand access merged with an in-flight prefetch (used to
    /// classify the prefetch as Late on fill).
    demand_merged: bool,
}

/// Organization-specific line storage.
#[derive(Debug)]
enum Storage {
    /// Fully associative: resident lines in a hash map, eviction
    /// candidates in a lazy min-heap of `(last_use, line)`. Stale heap
    /// entries (superseded by a later touch) are skipped at eviction
    /// time and purged wholesale whenever the heap outgrows
    /// [`Cache::fa_heap_limit`] — the heap is a cache of the
    /// `argmin (last_use, line)` computation, never authoritative state.
    Fa {
        lines: FxHashMap<u64, Line>,
        lru: BinaryHeap<Reverse<(u64, u64)>>,
    },
    /// Set associative: each set's ways hold `(line, state)` directly, in
    /// insertion order. Victim selection scans the ≤`ways` entries for
    /// the minimum `last_use` (first minimum wins) and `swap_remove`s it,
    /// so way order is architecturally significant state.
    Sa { sets: Vec<Vec<(u64, Line)>> },
}

/// A cycle-level cache with MSHRs.
///
/// The cache stores *presence* only — data movement is modeled by the
/// surrounding memory system. Probes and fills are driven by the caller.
///
/// # Examples
///
/// ```
/// use rt_gpu_sim::{Cache, FillOrigin, Organization, ProbeOutcome};
///
/// let mut cache = Cache::new(4, Organization::FullyAssociative, 8, 64);
/// assert_eq!(cache.probe(0x1000, FillOrigin::Demand, 1), ProbeOutcome::Miss);
/// cache.fill(0x1000, 2);
/// assert!(matches!(
///     cache.probe(0x1000, FillOrigin::Demand, 3),
///     ProbeOutcome::Hit { .. }
/// ));
/// ```
#[derive(Debug)]
pub struct Cache {
    storage: Storage,
    resident: usize,
    capacity_lines: usize,
    organization: Organization,
    ways: usize,
    line_bytes: u64,
    mshrs: FxHashMap<u64, MshrEntry>,
    mshr_capacity: usize,
    /// Prefetched lines evicted before any demand read; a later demand
    /// miss on one of these reclassifies the prefetch as Early.
    evicted_unread: FxHashSet<u64>,
    stats: CacheStats,
    effect: PrefetchEffect,
}

impl Cache {
    /// Creates a cache of `capacity_lines` lines.
    ///
    /// For [`Organization::SetAssociative`], `capacity_lines` must be a
    /// multiple of `sets`.
    ///
    /// # Panics
    ///
    /// Panics if `capacity_lines` or `mshr_capacity` is zero, or the
    /// set-associative shape does not divide evenly.
    pub fn new(
        capacity_lines: usize,
        organization: Organization,
        mshr_capacity: usize,
        line_bytes: u64,
    ) -> Cache {
        assert!(capacity_lines > 0, "cache must hold at least one line");
        assert!(mshr_capacity > 0, "cache needs at least one MSHR");
        let (ways, storage) = match organization {
            Organization::FullyAssociative => (
                capacity_lines,
                Storage::Fa {
                    lines: FxHashMap::with_capacity_and_hasher(
                        capacity_lines,
                        Default::default(),
                    ),
                    lru: BinaryHeap::with_capacity(capacity_lines * 2),
                },
            ),
            Organization::SetAssociative { sets } => {
                assert!(
                    sets > 0 && (capacity_lines as u64).is_multiple_of(sets),
                    "capacity must divide evenly into sets"
                );
                let ways = (capacity_lines as u64 / sets) as usize;
                (
                    ways,
                    Storage::Sa {
                        sets: (0..sets).map(|_| Vec::with_capacity(ways)).collect(),
                    },
                )
            }
        };
        Cache {
            storage,
            resident: 0,
            capacity_lines,
            organization,
            ways,
            line_bytes,
            mshrs: FxHashMap::default(),
            mshr_capacity,
            evicted_unread: FxHashSet::default(),
            stats: CacheStats::default(),
            effect: PrefetchEffect::default(),
        }
    }

    /// Line-aligned address of `addr`.
    pub fn line_of(&self, addr: u64) -> u64 {
        addr / self.line_bytes * self.line_bytes
    }

    fn set_of(&self, line: u64) -> usize {
        match self.organization {
            Organization::FullyAssociative => 0,
            Organization::SetAssociative { sets } => ((line / self.line_bytes) % sets) as usize,
        }
    }

    /// Stale-entry bound of the fully associative LRU heap: when the heap
    /// grows past this, it is rebuilt from the resident lines.
    fn fa_heap_limit(&self) -> usize {
        (self.capacity_lines * 4).max(64)
    }

    /// Probes the cache for the line containing `addr` at time `now`.
    ///
    /// On [`ProbeOutcome::Miss`] an MSHR entry is allocated and the caller
    /// must send the fetch upstream, then call [`Cache::fill`] when data
    /// returns. Prefetch probes that find the line present or pending are
    /// dropped (classified *too late*) — the caller should not forward
    /// them.
    pub fn probe(&mut self, addr: u64, origin: FillOrigin, now: u64) -> ProbeOutcome {
        let line = self.line_of(addr);
        if origin == FillOrigin::Prefetch {
            self.stats.prefetch_probes += 1;
        }
        let set = self.set_of(line);
        let heap_limit = self.fa_heap_limit();
        let entry = match &mut self.storage {
            Storage::Fa { lines, lru } => {
                let entry = lines.get_mut(&line);
                if entry.is_some() {
                    lru.push(Reverse((now, line)));
                    if lru.len() > heap_limit {
                        // Defer the rebuild: `entry` borrows `lines`.
                        // Handled below once the hit is classified.
                    }
                }
                entry
            }
            Storage::Sa { sets } => sets[set].iter_mut().find(|(l, _)| *l == line).map(|(_, e)| e),
        };
        if let Some(entry) = entry {
            entry.last_use = now;
            let outcome = match origin {
                FillOrigin::Demand => {
                    let on_prefetch = entry.origin == FillOrigin::Prefetch;
                    if on_prefetch && !entry.read_by_demand {
                        entry.read_by_demand = true;
                        self.effect.timely += 1;
                    }
                    if on_prefetch {
                        self.stats.demand_hits_on_prefetch += 1;
                    } else {
                        self.stats.demand_hits_on_demand += 1;
                    }
                    ProbeOutcome::Hit {
                        filled_by_prefetch: on_prefetch,
                    }
                }
                FillOrigin::Prefetch => {
                    self.effect.too_late += 1;
                    ProbeOutcome::Hit {
                        filled_by_prefetch: entry.origin == FillOrigin::Prefetch,
                    }
                }
            };
            if let Storage::Fa { lines, lru } = &mut self.storage {
                if lru.len() > heap_limit {
                    lru.clear();
                    lru.extend(lines.iter().map(|(&l, e)| Reverse((e.last_use, l))));
                }
            }
            outcome
        } else if let Some(mshr) = self.mshrs.get_mut(&line) {
            match origin {
                FillOrigin::Demand => {
                    self.stats.demand_pending_hits += 1;
                    if mshr.origin == FillOrigin::Prefetch && !mshr.demand_merged {
                        mshr.demand_merged = true;
                        self.effect.late += 1;
                    }
                }
                FillOrigin::Prefetch => {
                    self.effect.too_late += 1;
                }
            }
            ProbeOutcome::PendingHit
        } else {
            if self.mshrs.len() >= self.mshr_capacity {
                self.stats.mshr_rejections += 1;
                return ProbeOutcome::NoMshr;
            }
            match origin {
                FillOrigin::Demand => {
                    self.stats.demand_misses += 1;
                    // A demand miss on a line whose prefetched copy was
                    // evicted unread: the prefetch was Early.
                    if self.evicted_unread.remove(&line) {
                        self.effect.early += 1;
                    }
                }
                FillOrigin::Prefetch => self.stats.prefetch_misses += 1,
            }
            self.mshrs.insert(
                line,
                MshrEntry {
                    origin,
                    demand_merged: false,
                },
            );
            ProbeOutcome::Miss
        }
    }

    /// Installs the line containing `addr`, completing its MSHR entry.
    /// Evicts an LRU victim if the cache (or set) is full. Returns the
    /// evicted line, if any.
    pub fn fill(&mut self, addr: u64, now: u64) -> Option<u64> {
        let line = self.line_of(addr);
        let mshr = self.mshrs.remove(&line);
        if self.contains(line) {
            return None; // already resident (e.g. racing fills)
        }
        let origin = mshr.as_ref().map_or(FillOrigin::Demand, |m| m.origin);
        // A prefetch whose in-flight window absorbed a demand load counts
        // as read the moment it lands (the demand consumes it).
        let read_by_demand = mshr.as_ref().is_some_and(|m| m.demand_merged);
        let victim = self.evict_if_needed(line);
        let set = self.set_of(line);
        let heap_limit = self.fa_heap_limit();
        let entry = Line {
            last_use: now,
            origin,
            read_by_demand,
        };
        match &mut self.storage {
            Storage::Fa { lines, lru } => {
                lines.insert(line, entry);
                lru.push(Reverse((now, line)));
                if lru.len() > heap_limit {
                    lru.clear();
                    lru.extend(lines.iter().map(|(&l, e)| Reverse((e.last_use, l))));
                }
            }
            Storage::Sa { sets } => sets[set].push((line, entry)),
        }
        self.resident += 1;
        victim
    }

    fn evict_if_needed(&mut self, incoming: u64) -> Option<u64> {
        let set = self.set_of(incoming);
        let capacity_lines = self.capacity_lines;
        let ways = self.ways;
        let (victim, entry) = match &mut self.storage {
            Storage::Fa { lines, lru } => {
                if lines.len() < capacity_lines {
                    return None;
                }
                // Lazy heap: pop until an entry matches the line's current
                // last_use. The victim is the resident line minimizing
                // (last_use, line).
                let victim = loop {
                    let Reverse((ts, line)) =
                        lru.pop().expect("LRU heap empty while cache is full");
                    if let Some(entry) = lines.get(&line) {
                        if entry.last_use == ts {
                            break line;
                        }
                    }
                };
                let entry = lines.remove(&victim).expect("victim must be resident");
                (victim, entry)
            }
            Storage::Sa { sets } => {
                let members = &mut sets[set];
                if members.len() < ways {
                    return None;
                }
                let pos = members
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, (_, e))| e.last_use)
                    .map(|(pos, _)| pos)
                    .expect("set unexpectedly empty");
                members.swap_remove(pos)
            }
        };
        self.resident -= 1;
        self.stats.evictions += 1;
        if entry.origin == FillOrigin::Prefetch && !entry.read_by_demand {
            self.evicted_unread.insert(victim);
        }
        Some(victim)
    }

    fn line_entry(&self, line: u64) -> Option<&Line> {
        match &self.storage {
            Storage::Fa { lines, .. } => lines.get(&line),
            Storage::Sa { sets } => sets[self.set_of(line)]
                .iter()
                .find(|(l, _)| *l == line)
                .map(|(_, e)| e),
        }
    }

    /// Whether the line containing `addr` is resident.
    pub fn contains(&self, addr: u64) -> bool {
        self.line_entry(self.line_of(addr)).is_some()
    }

    /// Whether the line containing `addr` has an in-flight MSHR entry.
    pub fn is_pending(&self, addr: u64) -> bool {
        self.mshrs.contains_key(&self.line_of(addr))
    }

    /// Number of resident lines.
    pub fn resident_lines(&self) -> usize {
        self.resident
    }

    /// Number of allocated MSHR entries.
    pub fn mshrs_in_use(&self) -> usize {
        self.mshrs.len()
    }

    /// Demand/prefetch access counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Prefetch effectiveness counters. Call [`Cache::finalize_effect`]
    /// at end of simulation to classify still-unread prefetched lines as
    /// unused.
    pub fn effect(&self) -> PrefetchEffect {
        self.effect
    }

    /// Iterates resident `(line, state)` pairs in storage order.
    fn iter_lines(&self) -> Box<dyn Iterator<Item = (u64, &Line)> + '_> {
        match &self.storage {
            Storage::Fa { lines, .. } => Box::new(lines.iter().map(|(&l, e)| (l, e))),
            Storage::Sa { sets } => Box::new(
                sets.iter()
                    .flat_map(|set| set.iter().map(|(l, e)| (*l, e))),
            ),
        }
    }

    /// Classifies remaining unread prefetched lines (resident or evicted)
    /// as *unused* and returns the final effectiveness counters.
    pub fn finalize_effect(&mut self) -> PrefetchEffect {
        let resident_unread = self
            .iter_lines()
            .filter(|(_, l)| l.origin == FillOrigin::Prefetch && !l.read_by_demand)
            .count() as u64;
        // In-flight prefetches with no merged demand are also unused.
        let inflight_unread = self
            .mshrs
            .values()
            .filter(|m| m.origin == FillOrigin::Prefetch && !m.demand_merged)
            .count() as u64;
        self.effect.unused += resident_unread + inflight_unread + self.evicted_unread.len() as u64;
        self.evicted_unread.clear();
        self.effect
    }

    /// Serializes the complete cache state into `w`.
    ///
    /// Encoding is canonical (deterministic): hash maps and sets are
    /// written in sorted key order, and per-set membership **verbatim**
    /// in way order — set-associative victim selection tie-breaks on
    /// position (`min_by_key` returns the first minimum, then
    /// `swap_remove` reshuffles), so order is architecturally significant
    /// state. The fully associative LRU heap is *not* encoded: it is a
    /// lazy cache of `argmin (last_use, line)` over the resident lines
    /// and is rebuilt exactly from them on decode.
    pub(crate) fn encode_state(&self, w: &mut ByteWriter) {
        w.put_usize(self.capacity_lines);
        match self.organization {
            Organization::FullyAssociative => w.put_u8(0),
            Organization::SetAssociative { sets } => {
                w.put_u8(1);
                w.put_u64(sets);
            }
        }
        w.put_usize(self.ways);
        w.put_u64(self.line_bytes);
        w.put_usize(self.mshr_capacity);

        let mut entries: Vec<(u64, &Line)> = self.iter_lines().collect();
        entries.sort_unstable_by_key(|&(k, _)| k);
        w.put_len(entries.len());
        for (k, line) in entries {
            w.put_u64(k);
            w.put_u64(line.last_use);
            encode_origin(line.origin, w);
            w.put_bool(line.read_by_demand);
        }

        let mut keys: Vec<u64> = self.mshrs.keys().copied().collect();
        keys.sort_unstable();
        w.put_len(keys.len());
        for k in keys {
            let entry = &self.mshrs[&k];
            w.put_u64(k);
            encode_origin(entry.origin, w);
            w.put_bool(entry.demand_merged);
        }

        match &self.storage {
            Storage::Fa { .. } => {
                // One organization-defined set with no explicit member
                // list (membership is the line map itself).
                w.put_len(1);
                w.put_len(0);
            }
            Storage::Sa { sets } => {
                w.put_len(sets.len());
                for set in sets {
                    w.put_len(set.len());
                    for (line, _) in set {
                        w.put_u64(*line);
                    }
                }
            }
        }

        let mut evicted: Vec<u64> = self.evicted_unread.iter().copied().collect();
        evicted.sort_unstable();
        w.put_len(evicted.len());
        for line in evicted {
            w.put_u64(line);
        }

        for v in [
            self.stats.demand_hits_on_prefetch,
            self.stats.demand_hits_on_demand,
            self.stats.demand_pending_hits,
            self.stats.demand_misses,
            self.stats.prefetch_probes,
            self.stats.prefetch_misses,
            self.stats.mshr_rejections,
            self.stats.evictions,
        ] {
            w.put_u64(v);
        }
        for v in [
            self.effect.too_late,
            self.effect.late,
            self.effect.timely,
            self.effect.early,
            self.effect.unused,
        ] {
            w.put_u64(v);
        }
    }

    /// Rebuilds a cache from bytes produced by [`Cache::encode_state`].
    /// All reads are bounds-checked; structural inconsistencies (set
    /// members naming non-resident lines, resident lines missing from
    /// their set, impossible shapes) are rejected as
    /// [`DecodeError::Malformed`] rather than trusted.
    pub(crate) fn decode_state(r: &mut ByteReader<'_>) -> Result<Cache, DecodeError> {
        let capacity_lines = r.take_usize()?;
        let organization = match r.take_u8()? {
            0 => Organization::FullyAssociative,
            1 => Organization::SetAssociative { sets: r.take_u64()? },
            t => {
                return Err(DecodeError::malformed(format!(
                    "unknown cache organization tag {t}"
                )))
            }
        };
        let ways = r.take_usize()?;
        let line_bytes = r.take_u64()?;
        let mshr_capacity = r.take_usize()?;
        if capacity_lines == 0 || ways == 0 || line_bytes == 0 || mshr_capacity == 0 {
            return Err(DecodeError::malformed("cache shape fields must be nonzero"));
        }

        let n = r.take_len(11)?;
        let mut lines: FxHashMap<u64, Line> =
            FxHashMap::with_capacity_and_hasher(n, Default::default());
        for _ in 0..n {
            let k = r.take_u64()?;
            let last_use = r.take_u64()?;
            let origin = decode_origin(r)?;
            let read_by_demand = r.take_bool()?;
            lines.insert(
                k,
                Line {
                    last_use,
                    origin,
                    read_by_demand,
                },
            );
        }
        let resident = lines.len();

        let n = r.take_len(10)?;
        let mut mshrs: FxHashMap<u64, MshrEntry> =
            FxHashMap::with_capacity_and_hasher(n, Default::default());
        for _ in 0..n {
            let k = r.take_u64()?;
            let origin = decode_origin(r)?;
            let demand_merged = r.take_bool()?;
            mshrs.insert(
                k,
                MshrEntry {
                    origin,
                    demand_merged,
                },
            );
        }

        let set_count = r.take_len(8)?;
        let expected_sets = match organization {
            Organization::FullyAssociative => 1,
            Organization::SetAssociative { sets } => sets as usize,
        };
        if set_count != expected_sets {
            return Err(DecodeError::malformed(format!(
                "set count {set_count} does not match organization ({expected_sets} sets)"
            )));
        }
        let storage = match organization {
            Organization::FullyAssociative => {
                let members = r.take_len(8)?;
                if members != 0 {
                    return Err(DecodeError::malformed(
                        "fully associative caches carry no explicit set members",
                    ));
                }
                // Rebuild the lazy eviction heap from the resident lines
                // (one fresh entry per line — the canonical minimal heap).
                let lru = lines
                    .iter()
                    .map(|(&l, e)| Reverse((e.last_use, l)))
                    .collect();
                Storage::Fa { lines, lru }
            }
            Organization::SetAssociative { .. } => {
                let mut sets = Vec::with_capacity(set_count);
                for _ in 0..set_count {
                    let members = r.take_len(8)?;
                    let mut set = Vec::with_capacity(members);
                    for _ in 0..members {
                        let line = r.take_u64()?;
                        let Some(entry) = lines.remove(&line) else {
                            return Err(DecodeError::malformed(format!(
                                "set member {line:#x} is not a resident line"
                            )));
                        };
                        set.push((line, entry));
                    }
                    sets.push(set);
                }
                if !lines.is_empty() {
                    return Err(DecodeError::malformed(
                        "resident line missing from its set-member list",
                    ));
                }
                Storage::Sa { sets }
            }
        };

        let n = r.take_len(8)?;
        let mut evicted_unread: FxHashSet<u64> =
            FxHashSet::with_capacity_and_hasher(n, Default::default());
        for _ in 0..n {
            evicted_unread.insert(r.take_u64()?);
        }

        let stats = CacheStats {
            demand_hits_on_prefetch: r.take_u64()?,
            demand_hits_on_demand: r.take_u64()?,
            demand_pending_hits: r.take_u64()?,
            demand_misses: r.take_u64()?,
            prefetch_probes: r.take_u64()?,
            prefetch_misses: r.take_u64()?,
            mshr_rejections: r.take_u64()?,
            evictions: r.take_u64()?,
        };
        let effect = PrefetchEffect {
            too_late: r.take_u64()?,
            late: r.take_u64()?,
            timely: r.take_u64()?,
            early: r.take_u64()?,
            unused: r.take_u64()?,
        };

        Ok(Cache {
            storage,
            resident,
            capacity_lines,
            organization,
            ways,
            line_bytes,
            mshrs,
            mshr_capacity,
            evicted_unread,
            stats,
            effect,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cache() -> Cache {
        Cache::new(4, Organization::FullyAssociative, 8, 64)
    }

    #[test]
    fn miss_then_fill_then_hit() {
        let mut c = small_cache();
        assert_eq!(c.probe(0x100, FillOrigin::Demand, 1), ProbeOutcome::Miss);
        assert!(c.is_pending(0x100));
        c.fill(0x100, 2);
        assert!(!c.is_pending(0x100));
        assert_eq!(
            c.probe(0x13f, FillOrigin::Demand, 3), // same line as 0x100
            ProbeOutcome::Hit {
                filled_by_prefetch: false
            }
        );
        let s = c.stats();
        assert_eq!(s.demand_misses, 1);
        assert_eq!(s.demand_hits_on_demand, 1);
    }

    #[test]
    fn pending_hit_merges() {
        let mut c = small_cache();
        assert_eq!(c.probe(0x100, FillOrigin::Demand, 1), ProbeOutcome::Miss);
        assert_eq!(
            c.probe(0x100, FillOrigin::Demand, 2),
            ProbeOutcome::PendingHit
        );
        assert_eq!(c.stats().demand_pending_hits, 1);
        assert_eq!(c.mshrs_in_use(), 1);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut c = small_cache();
        for (i, addr) in [0x000u64, 0x040, 0x080, 0x0c0].iter().enumerate() {
            c.probe(*addr, FillOrigin::Demand, i as u64);
            c.fill(*addr, i as u64);
        }
        // Touch 0x000 to refresh it.
        c.probe(0x000, FillOrigin::Demand, 10);
        // New line evicts 0x040 (oldest untouched).
        c.probe(0x100, FillOrigin::Demand, 11);
        let victim = c.fill(0x100, 12);
        assert_eq!(victim, Some(0x040));
        assert!(c.contains(0x000));
        assert!(!c.contains(0x040));
    }

    #[test]
    fn set_associative_evicts_within_set() {
        // 4 lines, 2 sets => 2 ways per set. Lines 0x00,0x80 map to set 0;
        // 0x40,0xc0 to set 1 (64-byte lines).
        let mut c = Cache::new(4, Organization::SetAssociative { sets: 2 }, 8, 64);
        for (i, addr) in [0x000u64, 0x080, 0x100].iter().enumerate() {
            c.probe(*addr, FillOrigin::Demand, i as u64);
            let v = c.fill(*addr, i as u64);
            if *addr == 0x100 {
                // Third line in set 0 evicts the set-0 LRU (0x000) even
                // though set 1 is empty.
                assert_eq!(v, Some(0x000));
            } else {
                assert_eq!(v, None);
            }
        }
    }

    #[test]
    fn mshr_capacity_rejects() {
        let mut c = Cache::new(4, Organization::FullyAssociative, 2, 64);
        assert_eq!(c.probe(0x000, FillOrigin::Demand, 1), ProbeOutcome::Miss);
        assert_eq!(c.probe(0x040, FillOrigin::Demand, 1), ProbeOutcome::Miss);
        assert_eq!(c.probe(0x080, FillOrigin::Demand, 1), ProbeOutcome::NoMshr);
        assert_eq!(c.stats().mshr_rejections, 1);
    }

    #[test]
    fn timely_prefetch_classification() {
        let mut c = small_cache();
        assert_eq!(c.probe(0x100, FillOrigin::Prefetch, 1), ProbeOutcome::Miss);
        c.fill(0x100, 5);
        assert_eq!(
            c.probe(0x100, FillOrigin::Demand, 6),
            ProbeOutcome::Hit {
                filled_by_prefetch: true
            }
        );
        assert_eq!(c.effect().timely, 1);
        assert_eq!(c.stats().demand_hits_on_prefetch, 1);
        // Second demand hit does not double-count timeliness.
        c.probe(0x100, FillOrigin::Demand, 7);
        assert_eq!(c.effect().timely, 1);
    }

    #[test]
    fn late_prefetch_classification() {
        let mut c = small_cache();
        c.probe(0x100, FillOrigin::Prefetch, 1);
        assert_eq!(
            c.probe(0x100, FillOrigin::Demand, 2),
            ProbeOutcome::PendingHit
        );
        assert_eq!(c.effect().late, 1);
        // On fill, the line counts as consumed; finalize adds no unused.
        c.fill(0x100, 3);
        let eff = c.finalize_effect();
        assert_eq!(eff.unused, 0);
    }

    #[test]
    fn too_late_prefetch_classification() {
        let mut c = small_cache();
        c.probe(0x100, FillOrigin::Demand, 1);
        c.fill(0x100, 2);
        // Prefetch probing a demand-resident line: too late.
        c.probe(0x100, FillOrigin::Prefetch, 3);
        assert_eq!(c.effect().too_late, 1);
        // Prefetch probing a demand-pending line: also too late.
        c.probe(0x200, FillOrigin::Demand, 4);
        c.probe(0x200, FillOrigin::Prefetch, 5);
        assert_eq!(c.effect().too_late, 2);
    }

    #[test]
    fn early_prefetch_classification() {
        let mut c = small_cache();
        // Prefetch a line, never read it, force it out, then demand it.
        c.probe(0x100, FillOrigin::Prefetch, 1);
        c.fill(0x100, 1);
        for (i, addr) in [0x200u64, 0x240, 0x280, 0x2c0].iter().enumerate() {
            c.probe(*addr, FillOrigin::Demand, 2 + i as u64);
            c.fill(*addr, 2 + i as u64);
        }
        assert!(!c.contains(0x100), "prefetched line should be evicted");
        c.probe(0x100, FillOrigin::Demand, 100);
        assert_eq!(c.effect().early, 1);
    }

    #[test]
    fn unused_prefetch_classification() {
        let mut c = small_cache();
        c.probe(0x100, FillOrigin::Prefetch, 1);
        c.fill(0x100, 1);
        c.probe(0x140, FillOrigin::Prefetch, 2);
        c.fill(0x140, 2);
        let eff = c.finalize_effect();
        assert_eq!(eff.unused, 2);
        assert_eq!(eff.total(), 2);
    }

    #[test]
    fn evicted_unread_without_later_demand_is_unused() {
        let mut c = small_cache();
        c.probe(0x100, FillOrigin::Prefetch, 1);
        c.fill(0x100, 1);
        for (i, addr) in [0x200u64, 0x240, 0x280, 0x2c0].iter().enumerate() {
            c.probe(*addr, FillOrigin::Demand, 2 + i as u64);
            c.fill(*addr, 2 + i as u64);
        }
        assert!(!c.contains(0x100));
        assert_eq!(c.finalize_effect().unused, 1);
    }

    #[test]
    fn hit_rate_accounts_all_demand_flavors() {
        let mut c = small_cache();
        c.probe(0x100, FillOrigin::Demand, 1); // miss
        c.fill(0x100, 2);
        c.probe(0x100, FillOrigin::Demand, 3); // hit
        let s = c.stats();
        assert_eq!(s.demand_accesses(), 2);
        assert!((s.demand_hit_rate() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn prefetch_counters() {
        let mut c = small_cache();
        c.probe(0x100, FillOrigin::Prefetch, 1);
        c.probe(0x140, FillOrigin::Prefetch, 1);
        let s = c.stats();
        assert_eq!(s.prefetch_probes, 2);
        assert_eq!(s.prefetch_misses, 2);
    }

    #[test]
    #[should_panic(expected = "at least one line")]
    fn zero_capacity_panics() {
        let _ = Cache::new(0, Organization::FullyAssociative, 1, 64);
    }

    #[test]
    fn fa_lru_heap_stays_bounded_under_hit_storms() {
        let mut c = small_cache();
        for (i, addr) in [0x000u64, 0x040, 0x080, 0x0c0].iter().enumerate() {
            c.probe(*addr, FillOrigin::Demand, i as u64);
            c.fill(*addr, i as u64);
        }
        // Hammer the same lines with hits; the lazy heap must compact
        // instead of growing one entry per hit.
        for t in 0..100_000u64 {
            c.probe((t % 4) * 0x40, FillOrigin::Demand, 10 + t);
        }
        let Storage::Fa { lru, .. } = &c.storage else {
            panic!("expected fully associative storage");
        };
        assert!(
            lru.len() <= c.fa_heap_limit(),
            "heap grew to {} entries (limit {})",
            lru.len(),
            c.fa_heap_limit()
        );
    }

    #[test]
    fn fa_eviction_matches_naive_argmin_model() {
        // Drive the cache with a deterministic pseudo-random access mix
        // and check every eviction against a brute-force reference model:
        // the victim is always the resident line minimizing
        // (last_use, line), regardless of heap compactions.
        let mut c = Cache::new(8, Organization::FullyAssociative, 16, 64);
        let mut model: Vec<(u64, u64)> = Vec::new(); // (line, last_use)
        let mut state = 0x2545_f491_4f6c_dd1du64;
        for t in 1..40_000u64 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let line = ((state >> 33) % 24) * 64;
            match c.probe(line, FillOrigin::Demand, t) {
                ProbeOutcome::Hit { .. } => {
                    let e = model.iter_mut().find(|(l, _)| *l == line).unwrap();
                    e.1 = t;
                }
                ProbeOutcome::Miss => {
                    let victim = c.fill(line, t);
                    let expect = if model.len() == 8 {
                        let &(l, _) = model
                            .iter()
                            .min_by_key(|&&(l, ts)| (ts, l))
                            .unwrap();
                        model.retain(|&(m, _)| m != l);
                        Some(l)
                    } else {
                        None
                    };
                    assert_eq!(victim, expect, "divergence at t={t}");
                    model.push((line, t));
                }
                other => panic!("unexpected outcome {other:?}"),
            }
        }
    }

    #[test]
    fn state_round_trips_through_the_codec() {
        for org in [
            Organization::FullyAssociative,
            Organization::SetAssociative { sets: 2 },
        ] {
            let mut c = Cache::new(4, org, 4, 64);
            // Leave behind resident lines, a pending MSHR, an eviction,
            // and nonzero stats/effect counters.
            for (i, addr) in [0x000u64, 0x040, 0x080, 0x0c0, 0x100].iter().enumerate() {
                c.probe(*addr, FillOrigin::Demand, i as u64);
                c.fill(*addr, i as u64);
            }
            c.probe(0x200, FillOrigin::Prefetch, 9);
            c.probe(0x000, FillOrigin::Demand, 10);

            let mut w = ByteWriter::new();
            c.encode_state(&mut w);
            let bytes = w.into_bytes();
            let mut r = ByteReader::new(&bytes);
            let back = Cache::decode_state(&mut r).expect("own encoding must decode");
            r.expect_end().unwrap();

            // Canonical encoding: re-encoding the decoded cache is
            // byte-identical (this is what the state digest hashes).
            let mut w2 = ByteWriter::new();
            back.encode_state(&mut w2);
            assert_eq!(w2.into_bytes(), bytes);
            assert_eq!(back.stats(), c.stats());
            assert_eq!(back.effect(), c.effect());
            assert_eq!(back.resident_lines(), c.resident_lines());
            assert_eq!(back.mshrs_in_use(), c.mshrs_in_use());
        }
    }

    #[test]
    fn decode_then_run_behaves_like_the_original() {
        // Beyond byte-level round-tripping: a decoded cache must make the
        // same eviction decisions as the original it was captured from
        // (the rebuilt FA heap holds exactly one fresh entry per line).
        let mut c = Cache::new(4, Organization::FullyAssociative, 8, 64);
        for (i, addr) in [0x000u64, 0x040, 0x080, 0x0c0].iter().enumerate() {
            c.probe(*addr, FillOrigin::Demand, i as u64);
            c.fill(*addr, i as u64);
        }
        c.probe(0x040, FillOrigin::Demand, 50); // refresh 0x040
        let mut w = ByteWriter::new();
        c.encode_state(&mut w);
        let bytes = w.into_bytes();
        let mut back = Cache::decode_state(&mut ByteReader::new(&bytes)).unwrap();
        for t in 60..70u64 {
            let line = (t - 60) * 64 + 0x400;
            let a = {
                c.probe(line, FillOrigin::Demand, t);
                c.fill(line, t)
            };
            let b = {
                back.probe(line, FillOrigin::Demand, t);
                back.fill(line, t)
            };
            assert_eq!(a, b, "victim divergence at t={t}");
        }
    }

    #[test]
    fn decode_rejects_inconsistent_set_membership() {
        let mut c = Cache::new(4, Organization::SetAssociative { sets: 2 }, 4, 64);
        c.probe(0x000, FillOrigin::Demand, 1);
        c.fill(0x000, 1);
        let mut w = ByteWriter::new();
        c.encode_state(&mut w);
        let mut bytes = w.into_bytes();
        let len = bytes.len();
        // Layout tail: ..., set-member addr (8), evicted-unread len (8),
        // stats+effect (13×8). Flip a byte of the set-member address so it
        // no longer names a resident line: decoding must fail typed, not
        // panic.
        let member_pos = len - 13 * 8 - 8 - 8;
        bytes[member_pos] ^= 0xff;
        let mut r = ByteReader::new(&bytes);
        match Cache::decode_state(&mut r) {
            Err(DecodeError::Malformed { .. }) => {}
            other => panic!("expected malformed rejection, got {other:?}"),
        }
    }
}
