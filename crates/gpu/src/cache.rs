//! Cycle-level cache model with MSHRs, LRU replacement, and
//! prefetch-provenance tracking.
//!
//! The cache distinguishes lines brought in by demand loads from lines
//! brought in by prefetches so the simulator can reproduce the paper's
//! L1 breakdown (Fig. 12) and prefetch-effectiveness classification
//! (Fig. 20).

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, HashSet};

/// Who caused a line to be (or be being) fetched.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FillOrigin {
    /// An ordinary demand load.
    Demand,
    /// The treelet (or comparison) prefetcher.
    Prefetch,
}

/// Outcome of a cache probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProbeOutcome {
    /// The line is resident; `filled_by_prefetch` reports its provenance
    /// at the time of the hit.
    Hit {
        /// `true` if the line was brought in by a prefetch and this is a
        /// demand read of prefetched data.
        filled_by_prefetch: bool,
    },
    /// The line is being fetched already; the access is merged into the
    /// existing MSHR entry.
    PendingHit,
    /// The line is absent; a new MSHR entry was allocated and the caller
    /// must forward the request upstream.
    Miss,
    /// The line is absent and no MSHR entry is available; the caller must
    /// retry later.
    NoMshr,
}

/// Replacement organization.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Organization {
    /// One set holding `lines` ways (the paper's fully associative L1).
    FullyAssociative,
    /// `sets` sets of `ways` lines each (the paper's 16-way L2).
    SetAssociative {
        /// Number of sets; the set index is `(addr / line) % sets`.
        sets: u64,
    },
}

/// Classification counters for prefetch effectiveness (paper Fig. 20).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PrefetchEffect {
    /// Prefetch found the line already present or pending from a demand
    /// load.
    pub too_late: u64,
    /// A demand load merged with an in-flight prefetch (pending hit on a
    /// prefetch).
    pub late: u64,
    /// A demand load hit a resident line brought in by a prefetch.
    pub timely: u64,
    /// The prefetched line was evicted unread and later demanded again.
    pub early: u64,
    /// Prefetched lines never read by any demand load.
    pub unused: u64,
}

impl PrefetchEffect {
    /// Total classified prefetches.
    pub fn total(&self) -> u64 {
        self.too_late + self.late + self.timely + self.early + self.unused
    }
}

/// Demand access counters (paper Fig. 12 breakdown).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Demand hits on lines brought in by prefetches.
    pub demand_hits_on_prefetch: u64,
    /// Demand hits on lines brought in by demand loads.
    pub demand_hits_on_demand: u64,
    /// Demand accesses merged into an in-flight fetch.
    pub demand_pending_hits: u64,
    /// Demand misses that allocated an MSHR.
    pub demand_misses: u64,
    /// Prefetch probes issued to this cache.
    pub prefetch_probes: u64,
    /// Prefetch probes that allocated an MSHR (actual prefetch fills
    /// requested upstream).
    pub prefetch_misses: u64,
    /// Accesses rejected because the MSHR file was full.
    pub mshr_rejections: u64,
    /// Lines evicted.
    pub evictions: u64,
}

impl CacheStats {
    /// All demand accesses that probed the cache.
    pub fn demand_accesses(&self) -> u64 {
        self.demand_hits_on_prefetch
            + self.demand_hits_on_demand
            + self.demand_pending_hits
            + self.demand_misses
    }

    /// Demand hit rate (hits / accesses), zero when idle.
    pub fn demand_hit_rate(&self) -> f64 {
        let total = self.demand_accesses();
        if total == 0 {
            return 0.0;
        }
        (self.demand_hits_on_prefetch + self.demand_hits_on_demand) as f64 / total as f64
    }
}

#[derive(Debug)]
struct Line {
    last_use: u64,
    origin: FillOrigin,
    /// For prefetched lines: has any demand load read it yet?
    read_by_demand: bool,
}

#[derive(Debug)]
struct MshrEntry {
    origin: FillOrigin,
    /// Set when a demand access merged with an in-flight prefetch (used to
    /// classify the prefetch as Late on fill).
    demand_merged: bool,
}

/// A cycle-level cache with MSHRs.
///
/// The cache stores *presence* only — data movement is modeled by the
/// surrounding memory system. Probes and fills are driven by the caller.
///
/// # Examples
///
/// ```
/// use rt_gpu_sim::{Cache, FillOrigin, Organization, ProbeOutcome};
///
/// let mut cache = Cache::new(4, Organization::FullyAssociative, 8, 64);
/// assert_eq!(cache.probe(0x1000, FillOrigin::Demand, 1), ProbeOutcome::Miss);
/// cache.fill(0x1000, 2);
/// assert!(matches!(
///     cache.probe(0x1000, FillOrigin::Demand, 3),
///     ProbeOutcome::Hit { .. }
/// ));
/// ```
#[derive(Debug)]
pub struct Cache {
    lines: HashMap<u64, Line>,
    capacity_lines: usize,
    organization: Organization,
    ways: usize,
    line_bytes: u64,
    mshrs: HashMap<u64, MshrEntry>,
    mshr_capacity: usize,
    /// Lazy min-heap of (last_use, line) for fully associative eviction.
    lru_heap: BinaryHeap<Reverse<(u64, u64)>>,
    /// Per-set membership for set-associative eviction.
    set_members: Vec<Vec<u64>>,
    /// Prefetched lines evicted before any demand read; a later demand
    /// miss on one of these reclassifies the prefetch as Early.
    evicted_unread: HashSet<u64>,
    stats: CacheStats,
    effect: PrefetchEffect,
}

impl Cache {
    /// Creates a cache of `capacity_lines` lines.
    ///
    /// For [`Organization::SetAssociative`], `capacity_lines` must be a
    /// multiple of `sets`.
    ///
    /// # Panics
    ///
    /// Panics if `capacity_lines` or `mshr_capacity` is zero, or the
    /// set-associative shape does not divide evenly.
    pub fn new(
        capacity_lines: usize,
        organization: Organization,
        mshr_capacity: usize,
        line_bytes: u64,
    ) -> Cache {
        assert!(capacity_lines > 0, "cache must hold at least one line");
        assert!(mshr_capacity > 0, "cache needs at least one MSHR");
        let (ways, set_count) = match organization {
            Organization::FullyAssociative => (capacity_lines, 1),
            Organization::SetAssociative { sets } => {
                assert!(
                    sets > 0 && (capacity_lines as u64).is_multiple_of(sets),
                    "capacity must divide evenly into sets"
                );
                ((capacity_lines as u64 / sets) as usize, sets as usize)
            }
        };
        Cache {
            lines: HashMap::with_capacity(capacity_lines),
            capacity_lines,
            organization,
            ways,
            line_bytes,
            mshrs: HashMap::new(),
            mshr_capacity,
            lru_heap: BinaryHeap::new(),
            set_members: vec![Vec::new(); set_count],
            evicted_unread: HashSet::new(),
            stats: CacheStats::default(),
            effect: PrefetchEffect::default(),
        }
    }

    /// Line-aligned address of `addr`.
    pub fn line_of(&self, addr: u64) -> u64 {
        addr / self.line_bytes * self.line_bytes
    }

    fn set_of(&self, line: u64) -> usize {
        match self.organization {
            Organization::FullyAssociative => 0,
            Organization::SetAssociative { sets } => ((line / self.line_bytes) % sets) as usize,
        }
    }

    /// Probes the cache for the line containing `addr` at time `now`.
    ///
    /// On [`ProbeOutcome::Miss`] an MSHR entry is allocated and the caller
    /// must send the fetch upstream, then call [`Cache::fill`] when data
    /// returns. Prefetch probes that find the line present or pending are
    /// dropped (classified *too late*) — the caller should not forward
    /// them.
    pub fn probe(&mut self, addr: u64, origin: FillOrigin, now: u64) -> ProbeOutcome {
        let line = self.line_of(addr);
        if origin == FillOrigin::Prefetch {
            self.stats.prefetch_probes += 1;
        }
        if let Some(entry) = self.lines.get_mut(&line) {
            entry.last_use = now;
            if let Organization::FullyAssociative = self.organization {
                self.lru_heap.push(Reverse((now, line)));
            }
            match origin {
                FillOrigin::Demand => {
                    let on_prefetch = entry.origin == FillOrigin::Prefetch;
                    if on_prefetch && !entry.read_by_demand {
                        entry.read_by_demand = true;
                        self.effect.timely += 1;
                    }
                    if on_prefetch {
                        self.stats.demand_hits_on_prefetch += 1;
                    } else {
                        self.stats.demand_hits_on_demand += 1;
                    }
                    ProbeOutcome::Hit {
                        filled_by_prefetch: on_prefetch,
                    }
                }
                FillOrigin::Prefetch => {
                    self.effect.too_late += 1;
                    ProbeOutcome::Hit {
                        filled_by_prefetch: entry.origin == FillOrigin::Prefetch,
                    }
                }
            }
        } else if let Some(mshr) = self.mshrs.get_mut(&line) {
            match origin {
                FillOrigin::Demand => {
                    self.stats.demand_pending_hits += 1;
                    if mshr.origin == FillOrigin::Prefetch && !mshr.demand_merged {
                        mshr.demand_merged = true;
                        self.effect.late += 1;
                    }
                }
                FillOrigin::Prefetch => {
                    self.effect.too_late += 1;
                }
            }
            ProbeOutcome::PendingHit
        } else {
            if self.mshrs.len() >= self.mshr_capacity {
                self.stats.mshr_rejections += 1;
                return ProbeOutcome::NoMshr;
            }
            match origin {
                FillOrigin::Demand => {
                    self.stats.demand_misses += 1;
                    // A demand miss on a line whose prefetched copy was
                    // evicted unread: the prefetch was Early.
                    if self.evicted_unread.remove(&line) {
                        self.effect.early += 1;
                    }
                }
                FillOrigin::Prefetch => self.stats.prefetch_misses += 1,
            }
            self.mshrs.insert(
                line,
                MshrEntry {
                    origin,
                    demand_merged: false,
                },
            );
            ProbeOutcome::Miss
        }
    }

    /// Installs the line containing `addr`, completing its MSHR entry.
    /// Evicts an LRU victim if the cache (or set) is full. Returns the
    /// evicted line, if any.
    pub fn fill(&mut self, addr: u64, now: u64) -> Option<u64> {
        let line = self.line_of(addr);
        let mshr = self.mshrs.remove(&line);
        if self.lines.contains_key(&line) {
            return None; // already resident (e.g. racing fills)
        }
        let origin = mshr.as_ref().map_or(FillOrigin::Demand, |m| m.origin);
        // A prefetch whose in-flight window absorbed a demand load counts
        // as read the moment it lands (the demand consumes it).
        let read_by_demand = mshr.as_ref().is_some_and(|m| m.demand_merged);
        let victim = self.evict_if_needed(line);
        self.lines.insert(
            line,
            Line {
                last_use: now,
                origin,
                read_by_demand,
            },
        );
        match self.organization {
            Organization::FullyAssociative => self.lru_heap.push(Reverse((now, line))),
            Organization::SetAssociative { .. } => {
                let set = self.set_of(line);
                self.set_members[set].push(line);
            }
        }
        victim
    }

    fn evict_if_needed(&mut self, incoming: u64) -> Option<u64> {
        let victim = match self.organization {
            Organization::FullyAssociative => {
                if self.lines.len() < self.capacity_lines {
                    return None;
                }
                // Lazy heap: pop until an entry matches the line's current
                // last_use.
                loop {
                    let Reverse((ts, line)) = self
                        .lru_heap
                        .pop()
                        .expect("LRU heap empty while cache is full");
                    if let Some(entry) = self.lines.get(&line) {
                        if entry.last_use == ts {
                            break line;
                        }
                    }
                }
            }
            Organization::SetAssociative { .. } => {
                let set = self.set_of(incoming);
                if self.set_members[set].len() < self.ways {
                    return None;
                }
                let (pos, &victim) = self.set_members[set]
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, &l)| self.lines[&l].last_use)
                    .expect("set unexpectedly empty");
                self.set_members[set].swap_remove(pos);
                victim
            }
        };
        let entry = self.lines.remove(&victim).expect("victim must be resident");
        self.stats.evictions += 1;
        if entry.origin == FillOrigin::Prefetch && !entry.read_by_demand {
            self.evicted_unread.insert(victim);
        }
        Some(victim)
    }

    /// Whether the line containing `addr` is resident.
    pub fn contains(&self, addr: u64) -> bool {
        self.lines.contains_key(&self.line_of(addr))
    }

    /// Whether the line containing `addr` has an in-flight MSHR entry.
    pub fn is_pending(&self, addr: u64) -> bool {
        self.mshrs.contains_key(&self.line_of(addr))
    }

    /// Number of resident lines.
    pub fn resident_lines(&self) -> usize {
        self.lines.len()
    }

    /// Number of allocated MSHR entries.
    pub fn mshrs_in_use(&self) -> usize {
        self.mshrs.len()
    }

    /// Demand/prefetch access counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Prefetch effectiveness counters. Call [`Cache::finalize_effect`]
    /// at end of simulation to classify still-unread prefetched lines as
    /// unused.
    pub fn effect(&self) -> PrefetchEffect {
        self.effect
    }

    /// Classifies remaining unread prefetched lines (resident or evicted)
    /// as *unused* and returns the final effectiveness counters.
    pub fn finalize_effect(&mut self) -> PrefetchEffect {
        let resident_unread = self
            .lines
            .values()
            .filter(|l| l.origin == FillOrigin::Prefetch && !l.read_by_demand)
            .count() as u64;
        // In-flight prefetches with no merged demand are also unused.
        let inflight_unread = self
            .mshrs
            .values()
            .filter(|m| m.origin == FillOrigin::Prefetch && !m.demand_merged)
            .count() as u64;
        self.effect.unused += resident_unread + inflight_unread + self.evicted_unread.len() as u64;
        self.evicted_unread.clear();
        self.effect
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cache() -> Cache {
        Cache::new(4, Organization::FullyAssociative, 8, 64)
    }

    #[test]
    fn miss_then_fill_then_hit() {
        let mut c = small_cache();
        assert_eq!(c.probe(0x100, FillOrigin::Demand, 1), ProbeOutcome::Miss);
        assert!(c.is_pending(0x100));
        c.fill(0x100, 2);
        assert!(!c.is_pending(0x100));
        assert_eq!(
            c.probe(0x13f, FillOrigin::Demand, 3), // same line as 0x100
            ProbeOutcome::Hit {
                filled_by_prefetch: false
            }
        );
        let s = c.stats();
        assert_eq!(s.demand_misses, 1);
        assert_eq!(s.demand_hits_on_demand, 1);
    }

    #[test]
    fn pending_hit_merges() {
        let mut c = small_cache();
        assert_eq!(c.probe(0x100, FillOrigin::Demand, 1), ProbeOutcome::Miss);
        assert_eq!(
            c.probe(0x100, FillOrigin::Demand, 2),
            ProbeOutcome::PendingHit
        );
        assert_eq!(c.stats().demand_pending_hits, 1);
        assert_eq!(c.mshrs_in_use(), 1);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut c = small_cache();
        for (i, addr) in [0x000u64, 0x040, 0x080, 0x0c0].iter().enumerate() {
            c.probe(*addr, FillOrigin::Demand, i as u64);
            c.fill(*addr, i as u64);
        }
        // Touch 0x000 to refresh it.
        c.probe(0x000, FillOrigin::Demand, 10);
        // New line evicts 0x040 (oldest untouched).
        c.probe(0x100, FillOrigin::Demand, 11);
        let victim = c.fill(0x100, 12);
        assert_eq!(victim, Some(0x040));
        assert!(c.contains(0x000));
        assert!(!c.contains(0x040));
    }

    #[test]
    fn set_associative_evicts_within_set() {
        // 4 lines, 2 sets => 2 ways per set. Lines 0x00,0x80 map to set 0;
        // 0x40,0xc0 to set 1 (64-byte lines).
        let mut c = Cache::new(4, Organization::SetAssociative { sets: 2 }, 8, 64);
        for (i, addr) in [0x000u64, 0x080, 0x100].iter().enumerate() {
            c.probe(*addr, FillOrigin::Demand, i as u64);
            let v = c.fill(*addr, i as u64);
            if *addr == 0x100 {
                // Third line in set 0 evicts the set-0 LRU (0x000) even
                // though set 1 is empty.
                assert_eq!(v, Some(0x000));
            } else {
                assert_eq!(v, None);
            }
        }
    }

    #[test]
    fn mshr_capacity_rejects() {
        let mut c = Cache::new(4, Organization::FullyAssociative, 2, 64);
        assert_eq!(c.probe(0x000, FillOrigin::Demand, 1), ProbeOutcome::Miss);
        assert_eq!(c.probe(0x040, FillOrigin::Demand, 1), ProbeOutcome::Miss);
        assert_eq!(c.probe(0x080, FillOrigin::Demand, 1), ProbeOutcome::NoMshr);
        assert_eq!(c.stats().mshr_rejections, 1);
    }

    #[test]
    fn timely_prefetch_classification() {
        let mut c = small_cache();
        assert_eq!(c.probe(0x100, FillOrigin::Prefetch, 1), ProbeOutcome::Miss);
        c.fill(0x100, 5);
        assert_eq!(
            c.probe(0x100, FillOrigin::Demand, 6),
            ProbeOutcome::Hit {
                filled_by_prefetch: true
            }
        );
        assert_eq!(c.effect().timely, 1);
        assert_eq!(c.stats().demand_hits_on_prefetch, 1);
        // Second demand hit does not double-count timeliness.
        c.probe(0x100, FillOrigin::Demand, 7);
        assert_eq!(c.effect().timely, 1);
    }

    #[test]
    fn late_prefetch_classification() {
        let mut c = small_cache();
        c.probe(0x100, FillOrigin::Prefetch, 1);
        assert_eq!(
            c.probe(0x100, FillOrigin::Demand, 2),
            ProbeOutcome::PendingHit
        );
        assert_eq!(c.effect().late, 1);
        // On fill, the line counts as consumed; finalize adds no unused.
        c.fill(0x100, 3);
        let eff = c.finalize_effect();
        assert_eq!(eff.unused, 0);
    }

    #[test]
    fn too_late_prefetch_classification() {
        let mut c = small_cache();
        c.probe(0x100, FillOrigin::Demand, 1);
        c.fill(0x100, 2);
        // Prefetch probing a demand-resident line: too late.
        c.probe(0x100, FillOrigin::Prefetch, 3);
        assert_eq!(c.effect().too_late, 1);
        // Prefetch probing a demand-pending line: also too late.
        c.probe(0x200, FillOrigin::Demand, 4);
        c.probe(0x200, FillOrigin::Prefetch, 5);
        assert_eq!(c.effect().too_late, 2);
    }

    #[test]
    fn early_prefetch_classification() {
        let mut c = small_cache();
        // Prefetch a line, never read it, force it out, then demand it.
        c.probe(0x100, FillOrigin::Prefetch, 1);
        c.fill(0x100, 1);
        for (i, addr) in [0x200u64, 0x240, 0x280, 0x2c0].iter().enumerate() {
            c.probe(*addr, FillOrigin::Demand, 2 + i as u64);
            c.fill(*addr, 2 + i as u64);
        }
        assert!(!c.contains(0x100), "prefetched line should be evicted");
        c.probe(0x100, FillOrigin::Demand, 100);
        assert_eq!(c.effect().early, 1);
    }

    #[test]
    fn unused_prefetch_classification() {
        let mut c = small_cache();
        c.probe(0x100, FillOrigin::Prefetch, 1);
        c.fill(0x100, 1);
        c.probe(0x140, FillOrigin::Prefetch, 2);
        c.fill(0x140, 2);
        let eff = c.finalize_effect();
        assert_eq!(eff.unused, 2);
        assert_eq!(eff.total(), 2);
    }

    #[test]
    fn evicted_unread_without_later_demand_is_unused() {
        let mut c = small_cache();
        c.probe(0x100, FillOrigin::Prefetch, 1);
        c.fill(0x100, 1);
        for (i, addr) in [0x200u64, 0x240, 0x280, 0x2c0].iter().enumerate() {
            c.probe(*addr, FillOrigin::Demand, 2 + i as u64);
            c.fill(*addr, 2 + i as u64);
        }
        assert!(!c.contains(0x100));
        assert_eq!(c.finalize_effect().unused, 1);
    }

    #[test]
    fn hit_rate_accounts_all_demand_flavors() {
        let mut c = small_cache();
        c.probe(0x100, FillOrigin::Demand, 1); // miss
        c.fill(0x100, 2);
        c.probe(0x100, FillOrigin::Demand, 3); // hit
        let s = c.stats();
        assert_eq!(s.demand_accesses(), 2);
        assert!((s.demand_hit_rate() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn prefetch_counters() {
        let mut c = small_cache();
        c.probe(0x100, FillOrigin::Prefetch, 1);
        c.probe(0x140, FillOrigin::Prefetch, 1);
        let s = c.stats();
        assert_eq!(s.prefetch_probes, 2);
        assert_eq!(s.prefetch_misses, 2);
    }

    #[test]
    #[should_panic(expected = "at least one line")]
    fn zero_capacity_panics() {
        let _ = Cache::new(0, Organization::FullyAssociative, 1, 64);
    }
}
