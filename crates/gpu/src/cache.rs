//! Cycle-level cache model with MSHRs, LRU replacement, and
//! prefetch-provenance tracking.
//!
//! The cache distinguishes lines brought in by demand loads from lines
//! brought in by prefetches so the simulator can reproduce the paper's
//! L1 breakdown (Fig. 12) and prefetch-effectiveness classification
//! (Fig. 20).

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, HashSet};

use crate::codec::{ByteReader, ByteWriter, DecodeError};

/// Who caused a line to be (or be being) fetched.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FillOrigin {
    /// An ordinary demand load.
    Demand,
    /// The treelet (or comparison) prefetcher.
    Prefetch,
}

pub(crate) fn encode_origin(origin: FillOrigin, w: &mut ByteWriter) {
    w.put_u8(match origin {
        FillOrigin::Demand => 0,
        FillOrigin::Prefetch => 1,
    });
}

pub(crate) fn decode_origin(r: &mut ByteReader<'_>) -> Result<FillOrigin, DecodeError> {
    match r.take_u8()? {
        0 => Ok(FillOrigin::Demand),
        1 => Ok(FillOrigin::Prefetch),
        t => Err(DecodeError::malformed(format!("unknown fill origin tag {t}"))),
    }
}

/// Outcome of a cache probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProbeOutcome {
    /// The line is resident; `filled_by_prefetch` reports its provenance
    /// at the time of the hit.
    Hit {
        /// `true` if the line was brought in by a prefetch and this is a
        /// demand read of prefetched data.
        filled_by_prefetch: bool,
    },
    /// The line is being fetched already; the access is merged into the
    /// existing MSHR entry.
    PendingHit,
    /// The line is absent; a new MSHR entry was allocated and the caller
    /// must forward the request upstream.
    Miss,
    /// The line is absent and no MSHR entry is available; the caller must
    /// retry later.
    NoMshr,
}

/// Replacement organization.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Organization {
    /// One set holding `lines` ways (the paper's fully associative L1).
    FullyAssociative,
    /// `sets` sets of `ways` lines each (the paper's 16-way L2).
    SetAssociative {
        /// Number of sets; the set index is `(addr / line) % sets`.
        sets: u64,
    },
}

/// Classification counters for prefetch effectiveness (paper Fig. 20).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PrefetchEffect {
    /// Prefetch found the line already present or pending from a demand
    /// load.
    pub too_late: u64,
    /// A demand load merged with an in-flight prefetch (pending hit on a
    /// prefetch).
    pub late: u64,
    /// A demand load hit a resident line brought in by a prefetch.
    pub timely: u64,
    /// The prefetched line was evicted unread and later demanded again.
    pub early: u64,
    /// Prefetched lines never read by any demand load.
    pub unused: u64,
}

impl PrefetchEffect {
    /// Total classified prefetches.
    pub fn total(&self) -> u64 {
        self.too_late + self.late + self.timely + self.early + self.unused
    }
}

/// Demand access counters (paper Fig. 12 breakdown).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Demand hits on lines brought in by prefetches.
    pub demand_hits_on_prefetch: u64,
    /// Demand hits on lines brought in by demand loads.
    pub demand_hits_on_demand: u64,
    /// Demand accesses merged into an in-flight fetch.
    pub demand_pending_hits: u64,
    /// Demand misses that allocated an MSHR.
    pub demand_misses: u64,
    /// Prefetch probes issued to this cache.
    pub prefetch_probes: u64,
    /// Prefetch probes that allocated an MSHR (actual prefetch fills
    /// requested upstream).
    pub prefetch_misses: u64,
    /// Accesses rejected because the MSHR file was full.
    pub mshr_rejections: u64,
    /// Lines evicted.
    pub evictions: u64,
}

impl CacheStats {
    /// All demand accesses that probed the cache.
    pub fn demand_accesses(&self) -> u64 {
        self.demand_hits_on_prefetch
            + self.demand_hits_on_demand
            + self.demand_pending_hits
            + self.demand_misses
    }

    /// Demand hit rate (hits / accesses), zero when idle.
    pub fn demand_hit_rate(&self) -> f64 {
        let total = self.demand_accesses();
        if total == 0 {
            return 0.0;
        }
        (self.demand_hits_on_prefetch + self.demand_hits_on_demand) as f64 / total as f64
    }
}

#[derive(Debug)]
struct Line {
    last_use: u64,
    origin: FillOrigin,
    /// For prefetched lines: has any demand load read it yet?
    read_by_demand: bool,
}

#[derive(Debug)]
struct MshrEntry {
    origin: FillOrigin,
    /// Set when a demand access merged with an in-flight prefetch (used to
    /// classify the prefetch as Late on fill).
    demand_merged: bool,
}

/// A cycle-level cache with MSHRs.
///
/// The cache stores *presence* only — data movement is modeled by the
/// surrounding memory system. Probes and fills are driven by the caller.
///
/// # Examples
///
/// ```
/// use rt_gpu_sim::{Cache, FillOrigin, Organization, ProbeOutcome};
///
/// let mut cache = Cache::new(4, Organization::FullyAssociative, 8, 64);
/// assert_eq!(cache.probe(0x1000, FillOrigin::Demand, 1), ProbeOutcome::Miss);
/// cache.fill(0x1000, 2);
/// assert!(matches!(
///     cache.probe(0x1000, FillOrigin::Demand, 3),
///     ProbeOutcome::Hit { .. }
/// ));
/// ```
#[derive(Debug)]
pub struct Cache {
    lines: HashMap<u64, Line>,
    capacity_lines: usize,
    organization: Organization,
    ways: usize,
    line_bytes: u64,
    mshrs: HashMap<u64, MshrEntry>,
    mshr_capacity: usize,
    /// Lazy min-heap of (last_use, line) for fully associative eviction.
    lru_heap: BinaryHeap<Reverse<(u64, u64)>>,
    /// Per-set membership for set-associative eviction.
    set_members: Vec<Vec<u64>>,
    /// Prefetched lines evicted before any demand read; a later demand
    /// miss on one of these reclassifies the prefetch as Early.
    evicted_unread: HashSet<u64>,
    stats: CacheStats,
    effect: PrefetchEffect,
}

impl Cache {
    /// Creates a cache of `capacity_lines` lines.
    ///
    /// For [`Organization::SetAssociative`], `capacity_lines` must be a
    /// multiple of `sets`.
    ///
    /// # Panics
    ///
    /// Panics if `capacity_lines` or `mshr_capacity` is zero, or the
    /// set-associative shape does not divide evenly.
    pub fn new(
        capacity_lines: usize,
        organization: Organization,
        mshr_capacity: usize,
        line_bytes: u64,
    ) -> Cache {
        assert!(capacity_lines > 0, "cache must hold at least one line");
        assert!(mshr_capacity > 0, "cache needs at least one MSHR");
        let (ways, set_count) = match organization {
            Organization::FullyAssociative => (capacity_lines, 1),
            Organization::SetAssociative { sets } => {
                assert!(
                    sets > 0 && (capacity_lines as u64).is_multiple_of(sets),
                    "capacity must divide evenly into sets"
                );
                ((capacity_lines as u64 / sets) as usize, sets as usize)
            }
        };
        Cache {
            lines: HashMap::with_capacity(capacity_lines),
            capacity_lines,
            organization,
            ways,
            line_bytes,
            mshrs: HashMap::new(),
            mshr_capacity,
            lru_heap: BinaryHeap::new(),
            set_members: vec![Vec::new(); set_count],
            evicted_unread: HashSet::new(),
            stats: CacheStats::default(),
            effect: PrefetchEffect::default(),
        }
    }

    /// Line-aligned address of `addr`.
    pub fn line_of(&self, addr: u64) -> u64 {
        addr / self.line_bytes * self.line_bytes
    }

    fn set_of(&self, line: u64) -> usize {
        match self.organization {
            Organization::FullyAssociative => 0,
            Organization::SetAssociative { sets } => ((line / self.line_bytes) % sets) as usize,
        }
    }

    /// Probes the cache for the line containing `addr` at time `now`.
    ///
    /// On [`ProbeOutcome::Miss`] an MSHR entry is allocated and the caller
    /// must send the fetch upstream, then call [`Cache::fill`] when data
    /// returns. Prefetch probes that find the line present or pending are
    /// dropped (classified *too late*) — the caller should not forward
    /// them.
    pub fn probe(&mut self, addr: u64, origin: FillOrigin, now: u64) -> ProbeOutcome {
        let line = self.line_of(addr);
        if origin == FillOrigin::Prefetch {
            self.stats.prefetch_probes += 1;
        }
        if let Some(entry) = self.lines.get_mut(&line) {
            entry.last_use = now;
            if let Organization::FullyAssociative = self.organization {
                self.lru_heap.push(Reverse((now, line)));
            }
            match origin {
                FillOrigin::Demand => {
                    let on_prefetch = entry.origin == FillOrigin::Prefetch;
                    if on_prefetch && !entry.read_by_demand {
                        entry.read_by_demand = true;
                        self.effect.timely += 1;
                    }
                    if on_prefetch {
                        self.stats.demand_hits_on_prefetch += 1;
                    } else {
                        self.stats.demand_hits_on_demand += 1;
                    }
                    ProbeOutcome::Hit {
                        filled_by_prefetch: on_prefetch,
                    }
                }
                FillOrigin::Prefetch => {
                    self.effect.too_late += 1;
                    ProbeOutcome::Hit {
                        filled_by_prefetch: entry.origin == FillOrigin::Prefetch,
                    }
                }
            }
        } else if let Some(mshr) = self.mshrs.get_mut(&line) {
            match origin {
                FillOrigin::Demand => {
                    self.stats.demand_pending_hits += 1;
                    if mshr.origin == FillOrigin::Prefetch && !mshr.demand_merged {
                        mshr.demand_merged = true;
                        self.effect.late += 1;
                    }
                }
                FillOrigin::Prefetch => {
                    self.effect.too_late += 1;
                }
            }
            ProbeOutcome::PendingHit
        } else {
            if self.mshrs.len() >= self.mshr_capacity {
                self.stats.mshr_rejections += 1;
                return ProbeOutcome::NoMshr;
            }
            match origin {
                FillOrigin::Demand => {
                    self.stats.demand_misses += 1;
                    // A demand miss on a line whose prefetched copy was
                    // evicted unread: the prefetch was Early.
                    if self.evicted_unread.remove(&line) {
                        self.effect.early += 1;
                    }
                }
                FillOrigin::Prefetch => self.stats.prefetch_misses += 1,
            }
            self.mshrs.insert(
                line,
                MshrEntry {
                    origin,
                    demand_merged: false,
                },
            );
            ProbeOutcome::Miss
        }
    }

    /// Installs the line containing `addr`, completing its MSHR entry.
    /// Evicts an LRU victim if the cache (or set) is full. Returns the
    /// evicted line, if any.
    pub fn fill(&mut self, addr: u64, now: u64) -> Option<u64> {
        let line = self.line_of(addr);
        let mshr = self.mshrs.remove(&line);
        if self.lines.contains_key(&line) {
            return None; // already resident (e.g. racing fills)
        }
        let origin = mshr.as_ref().map_or(FillOrigin::Demand, |m| m.origin);
        // A prefetch whose in-flight window absorbed a demand load counts
        // as read the moment it lands (the demand consumes it).
        let read_by_demand = mshr.as_ref().is_some_and(|m| m.demand_merged);
        let victim = self.evict_if_needed(line);
        self.lines.insert(
            line,
            Line {
                last_use: now,
                origin,
                read_by_demand,
            },
        );
        match self.organization {
            Organization::FullyAssociative => self.lru_heap.push(Reverse((now, line))),
            Organization::SetAssociative { .. } => {
                let set = self.set_of(line);
                self.set_members[set].push(line);
            }
        }
        victim
    }

    fn evict_if_needed(&mut self, incoming: u64) -> Option<u64> {
        let victim = match self.organization {
            Organization::FullyAssociative => {
                if self.lines.len() < self.capacity_lines {
                    return None;
                }
                // Lazy heap: pop until an entry matches the line's current
                // last_use.
                loop {
                    let Reverse((ts, line)) = self
                        .lru_heap
                        .pop()
                        .expect("LRU heap empty while cache is full");
                    if let Some(entry) = self.lines.get(&line) {
                        if entry.last_use == ts {
                            break line;
                        }
                    }
                }
            }
            Organization::SetAssociative { .. } => {
                let set = self.set_of(incoming);
                if self.set_members[set].len() < self.ways {
                    return None;
                }
                let (pos, &victim) = self.set_members[set]
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, &l)| self.lines[&l].last_use)
                    .expect("set unexpectedly empty");
                self.set_members[set].swap_remove(pos);
                victim
            }
        };
        let entry = self.lines.remove(&victim).expect("victim must be resident");
        self.stats.evictions += 1;
        if entry.origin == FillOrigin::Prefetch && !entry.read_by_demand {
            self.evicted_unread.insert(victim);
        }
        Some(victim)
    }

    /// Whether the line containing `addr` is resident.
    pub fn contains(&self, addr: u64) -> bool {
        self.lines.contains_key(&self.line_of(addr))
    }

    /// Whether the line containing `addr` has an in-flight MSHR entry.
    pub fn is_pending(&self, addr: u64) -> bool {
        self.mshrs.contains_key(&self.line_of(addr))
    }

    /// Number of resident lines.
    pub fn resident_lines(&self) -> usize {
        self.lines.len()
    }

    /// Number of allocated MSHR entries.
    pub fn mshrs_in_use(&self) -> usize {
        self.mshrs.len()
    }

    /// Demand/prefetch access counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Prefetch effectiveness counters. Call [`Cache::finalize_effect`]
    /// at end of simulation to classify still-unread prefetched lines as
    /// unused.
    pub fn effect(&self) -> PrefetchEffect {
        self.effect
    }

    /// Classifies remaining unread prefetched lines (resident or evicted)
    /// as *unused* and returns the final effectiveness counters.
    pub fn finalize_effect(&mut self) -> PrefetchEffect {
        let resident_unread = self
            .lines
            .values()
            .filter(|l| l.origin == FillOrigin::Prefetch && !l.read_by_demand)
            .count() as u64;
        // In-flight prefetches with no merged demand are also unused.
        let inflight_unread = self
            .mshrs
            .values()
            .filter(|m| m.origin == FillOrigin::Prefetch && !m.demand_merged)
            .count() as u64;
        self.effect.unused += resident_unread + inflight_unread + self.evicted_unread.len() as u64;
        self.evicted_unread.clear();
        self.effect
    }

    /// Serializes the complete cache state into `w`.
    ///
    /// Encoding is canonical (deterministic): hash maps and sets are
    /// written in sorted key order, the lazy LRU heap as a sorted entry
    /// list, and per-set membership vectors **verbatim** — set-associative
    /// victim selection tie-breaks on position (`min_by_key` returns the
    /// first minimum, then `swap_remove` reshuffles), so order is
    /// architecturally significant state.
    pub(crate) fn encode_state(&self, w: &mut ByteWriter) {
        w.put_usize(self.capacity_lines);
        match self.organization {
            Organization::FullyAssociative => w.put_u8(0),
            Organization::SetAssociative { sets } => {
                w.put_u8(1);
                w.put_u64(sets);
            }
        }
        w.put_usize(self.ways);
        w.put_u64(self.line_bytes);
        w.put_usize(self.mshr_capacity);

        let mut keys: Vec<u64> = self.lines.keys().copied().collect();
        keys.sort_unstable();
        w.put_len(keys.len());
        for k in keys {
            let line = &self.lines[&k];
            w.put_u64(k);
            w.put_u64(line.last_use);
            encode_origin(line.origin, w);
            w.put_bool(line.read_by_demand);
        }

        let mut keys: Vec<u64> = self.mshrs.keys().copied().collect();
        keys.sort_unstable();
        w.put_len(keys.len());
        for k in keys {
            let entry = &self.mshrs[&k];
            w.put_u64(k);
            encode_origin(entry.origin, w);
            w.put_bool(entry.demand_merged);
        }

        let mut heap: Vec<(u64, u64)> = self.lru_heap.iter().map(|Reverse(p)| *p).collect();
        heap.sort_unstable();
        w.put_len(heap.len());
        for (ts, line) in heap {
            w.put_u64(ts);
            w.put_u64(line);
        }

        w.put_len(self.set_members.len());
        for set in &self.set_members {
            w.put_len(set.len());
            for &line in set {
                w.put_u64(line);
            }
        }

        let mut evicted: Vec<u64> = self.evicted_unread.iter().copied().collect();
        evicted.sort_unstable();
        w.put_len(evicted.len());
        for line in evicted {
            w.put_u64(line);
        }

        for v in [
            self.stats.demand_hits_on_prefetch,
            self.stats.demand_hits_on_demand,
            self.stats.demand_pending_hits,
            self.stats.demand_misses,
            self.stats.prefetch_probes,
            self.stats.prefetch_misses,
            self.stats.mshr_rejections,
            self.stats.evictions,
        ] {
            w.put_u64(v);
        }
        for v in [
            self.effect.too_late,
            self.effect.late,
            self.effect.timely,
            self.effect.early,
            self.effect.unused,
        ] {
            w.put_u64(v);
        }
    }

    /// Rebuilds a cache from bytes produced by [`Cache::encode_state`].
    /// All reads are bounds-checked; structural inconsistencies (set
    /// members naming non-resident lines, impossible shapes) are rejected
    /// as [`DecodeError::Malformed`] rather than trusted.
    pub(crate) fn decode_state(r: &mut ByteReader<'_>) -> Result<Cache, DecodeError> {
        let capacity_lines = r.take_usize()?;
        let organization = match r.take_u8()? {
            0 => Organization::FullyAssociative,
            1 => Organization::SetAssociative { sets: r.take_u64()? },
            t => {
                return Err(DecodeError::malformed(format!(
                    "unknown cache organization tag {t}"
                )))
            }
        };
        let ways = r.take_usize()?;
        let line_bytes = r.take_u64()?;
        let mshr_capacity = r.take_usize()?;
        if capacity_lines == 0 || ways == 0 || line_bytes == 0 || mshr_capacity == 0 {
            return Err(DecodeError::malformed("cache shape fields must be nonzero"));
        }

        let n = r.take_len(11)?;
        let mut lines = HashMap::with_capacity(n);
        for _ in 0..n {
            let k = r.take_u64()?;
            let last_use = r.take_u64()?;
            let origin = decode_origin(r)?;
            let read_by_demand = r.take_bool()?;
            lines.insert(
                k,
                Line {
                    last_use,
                    origin,
                    read_by_demand,
                },
            );
        }

        let n = r.take_len(10)?;
        let mut mshrs = HashMap::with_capacity(n);
        for _ in 0..n {
            let k = r.take_u64()?;
            let origin = decode_origin(r)?;
            let demand_merged = r.take_bool()?;
            mshrs.insert(
                k,
                MshrEntry {
                    origin,
                    demand_merged,
                },
            );
        }

        let n = r.take_len(16)?;
        let mut lru_heap = BinaryHeap::with_capacity(n);
        for _ in 0..n {
            let ts = r.take_u64()?;
            let line = r.take_u64()?;
            lru_heap.push(Reverse((ts, line)));
        }

        let set_count = r.take_len(8)?;
        let expected_sets = match organization {
            Organization::FullyAssociative => 1,
            Organization::SetAssociative { sets } => sets as usize,
        };
        if set_count != expected_sets {
            return Err(DecodeError::malformed(format!(
                "set count {set_count} does not match organization ({expected_sets} sets)"
            )));
        }
        let mut set_members = Vec::with_capacity(set_count);
        for _ in 0..set_count {
            let members = r.take_len(8)?;
            let mut set = Vec::with_capacity(members);
            for _ in 0..members {
                let line = r.take_u64()?;
                if !lines.contains_key(&line) {
                    return Err(DecodeError::malformed(format!(
                        "set member {line:#x} is not a resident line"
                    )));
                }
                set.push(line);
            }
            set_members.push(set);
        }

        let n = r.take_len(8)?;
        let mut evicted_unread = HashSet::with_capacity(n);
        for _ in 0..n {
            evicted_unread.insert(r.take_u64()?);
        }

        let stats = CacheStats {
            demand_hits_on_prefetch: r.take_u64()?,
            demand_hits_on_demand: r.take_u64()?,
            demand_pending_hits: r.take_u64()?,
            demand_misses: r.take_u64()?,
            prefetch_probes: r.take_u64()?,
            prefetch_misses: r.take_u64()?,
            mshr_rejections: r.take_u64()?,
            evictions: r.take_u64()?,
        };
        let effect = PrefetchEffect {
            too_late: r.take_u64()?,
            late: r.take_u64()?,
            timely: r.take_u64()?,
            early: r.take_u64()?,
            unused: r.take_u64()?,
        };

        if matches!(organization, Organization::FullyAssociative) && !lines.is_empty() {
            // The lazy LRU heap must be able to name every resident line
            // or a later eviction would panic on an empty heap.
            if lru_heap.len() < lines.len() {
                return Err(DecodeError::malformed(
                    "LRU heap smaller than resident line count",
                ));
            }
        }

        Ok(Cache {
            lines,
            capacity_lines,
            organization,
            ways,
            line_bytes,
            mshrs,
            mshr_capacity,
            lru_heap,
            set_members,
            evicted_unread,
            stats,
            effect,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cache() -> Cache {
        Cache::new(4, Organization::FullyAssociative, 8, 64)
    }

    #[test]
    fn miss_then_fill_then_hit() {
        let mut c = small_cache();
        assert_eq!(c.probe(0x100, FillOrigin::Demand, 1), ProbeOutcome::Miss);
        assert!(c.is_pending(0x100));
        c.fill(0x100, 2);
        assert!(!c.is_pending(0x100));
        assert_eq!(
            c.probe(0x13f, FillOrigin::Demand, 3), // same line as 0x100
            ProbeOutcome::Hit {
                filled_by_prefetch: false
            }
        );
        let s = c.stats();
        assert_eq!(s.demand_misses, 1);
        assert_eq!(s.demand_hits_on_demand, 1);
    }

    #[test]
    fn pending_hit_merges() {
        let mut c = small_cache();
        assert_eq!(c.probe(0x100, FillOrigin::Demand, 1), ProbeOutcome::Miss);
        assert_eq!(
            c.probe(0x100, FillOrigin::Demand, 2),
            ProbeOutcome::PendingHit
        );
        assert_eq!(c.stats().demand_pending_hits, 1);
        assert_eq!(c.mshrs_in_use(), 1);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut c = small_cache();
        for (i, addr) in [0x000u64, 0x040, 0x080, 0x0c0].iter().enumerate() {
            c.probe(*addr, FillOrigin::Demand, i as u64);
            c.fill(*addr, i as u64);
        }
        // Touch 0x000 to refresh it.
        c.probe(0x000, FillOrigin::Demand, 10);
        // New line evicts 0x040 (oldest untouched).
        c.probe(0x100, FillOrigin::Demand, 11);
        let victim = c.fill(0x100, 12);
        assert_eq!(victim, Some(0x040));
        assert!(c.contains(0x000));
        assert!(!c.contains(0x040));
    }

    #[test]
    fn set_associative_evicts_within_set() {
        // 4 lines, 2 sets => 2 ways per set. Lines 0x00,0x80 map to set 0;
        // 0x40,0xc0 to set 1 (64-byte lines).
        let mut c = Cache::new(4, Organization::SetAssociative { sets: 2 }, 8, 64);
        for (i, addr) in [0x000u64, 0x080, 0x100].iter().enumerate() {
            c.probe(*addr, FillOrigin::Demand, i as u64);
            let v = c.fill(*addr, i as u64);
            if *addr == 0x100 {
                // Third line in set 0 evicts the set-0 LRU (0x000) even
                // though set 1 is empty.
                assert_eq!(v, Some(0x000));
            } else {
                assert_eq!(v, None);
            }
        }
    }

    #[test]
    fn mshr_capacity_rejects() {
        let mut c = Cache::new(4, Organization::FullyAssociative, 2, 64);
        assert_eq!(c.probe(0x000, FillOrigin::Demand, 1), ProbeOutcome::Miss);
        assert_eq!(c.probe(0x040, FillOrigin::Demand, 1), ProbeOutcome::Miss);
        assert_eq!(c.probe(0x080, FillOrigin::Demand, 1), ProbeOutcome::NoMshr);
        assert_eq!(c.stats().mshr_rejections, 1);
    }

    #[test]
    fn timely_prefetch_classification() {
        let mut c = small_cache();
        assert_eq!(c.probe(0x100, FillOrigin::Prefetch, 1), ProbeOutcome::Miss);
        c.fill(0x100, 5);
        assert_eq!(
            c.probe(0x100, FillOrigin::Demand, 6),
            ProbeOutcome::Hit {
                filled_by_prefetch: true
            }
        );
        assert_eq!(c.effect().timely, 1);
        assert_eq!(c.stats().demand_hits_on_prefetch, 1);
        // Second demand hit does not double-count timeliness.
        c.probe(0x100, FillOrigin::Demand, 7);
        assert_eq!(c.effect().timely, 1);
    }

    #[test]
    fn late_prefetch_classification() {
        let mut c = small_cache();
        c.probe(0x100, FillOrigin::Prefetch, 1);
        assert_eq!(
            c.probe(0x100, FillOrigin::Demand, 2),
            ProbeOutcome::PendingHit
        );
        assert_eq!(c.effect().late, 1);
        // On fill, the line counts as consumed; finalize adds no unused.
        c.fill(0x100, 3);
        let eff = c.finalize_effect();
        assert_eq!(eff.unused, 0);
    }

    #[test]
    fn too_late_prefetch_classification() {
        let mut c = small_cache();
        c.probe(0x100, FillOrigin::Demand, 1);
        c.fill(0x100, 2);
        // Prefetch probing a demand-resident line: too late.
        c.probe(0x100, FillOrigin::Prefetch, 3);
        assert_eq!(c.effect().too_late, 1);
        // Prefetch probing a demand-pending line: also too late.
        c.probe(0x200, FillOrigin::Demand, 4);
        c.probe(0x200, FillOrigin::Prefetch, 5);
        assert_eq!(c.effect().too_late, 2);
    }

    #[test]
    fn early_prefetch_classification() {
        let mut c = small_cache();
        // Prefetch a line, never read it, force it out, then demand it.
        c.probe(0x100, FillOrigin::Prefetch, 1);
        c.fill(0x100, 1);
        for (i, addr) in [0x200u64, 0x240, 0x280, 0x2c0].iter().enumerate() {
            c.probe(*addr, FillOrigin::Demand, 2 + i as u64);
            c.fill(*addr, 2 + i as u64);
        }
        assert!(!c.contains(0x100), "prefetched line should be evicted");
        c.probe(0x100, FillOrigin::Demand, 100);
        assert_eq!(c.effect().early, 1);
    }

    #[test]
    fn unused_prefetch_classification() {
        let mut c = small_cache();
        c.probe(0x100, FillOrigin::Prefetch, 1);
        c.fill(0x100, 1);
        c.probe(0x140, FillOrigin::Prefetch, 2);
        c.fill(0x140, 2);
        let eff = c.finalize_effect();
        assert_eq!(eff.unused, 2);
        assert_eq!(eff.total(), 2);
    }

    #[test]
    fn evicted_unread_without_later_demand_is_unused() {
        let mut c = small_cache();
        c.probe(0x100, FillOrigin::Prefetch, 1);
        c.fill(0x100, 1);
        for (i, addr) in [0x200u64, 0x240, 0x280, 0x2c0].iter().enumerate() {
            c.probe(*addr, FillOrigin::Demand, 2 + i as u64);
            c.fill(*addr, 2 + i as u64);
        }
        assert!(!c.contains(0x100));
        assert_eq!(c.finalize_effect().unused, 1);
    }

    #[test]
    fn hit_rate_accounts_all_demand_flavors() {
        let mut c = small_cache();
        c.probe(0x100, FillOrigin::Demand, 1); // miss
        c.fill(0x100, 2);
        c.probe(0x100, FillOrigin::Demand, 3); // hit
        let s = c.stats();
        assert_eq!(s.demand_accesses(), 2);
        assert!((s.demand_hit_rate() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn prefetch_counters() {
        let mut c = small_cache();
        c.probe(0x100, FillOrigin::Prefetch, 1);
        c.probe(0x140, FillOrigin::Prefetch, 1);
        let s = c.stats();
        assert_eq!(s.prefetch_probes, 2);
        assert_eq!(s.prefetch_misses, 2);
    }

    #[test]
    #[should_panic(expected = "at least one line")]
    fn zero_capacity_panics() {
        let _ = Cache::new(0, Organization::FullyAssociative, 1, 64);
    }

    #[test]
    fn state_round_trips_through_the_codec() {
        for org in [
            Organization::FullyAssociative,
            Organization::SetAssociative { sets: 2 },
        ] {
            let mut c = Cache::new(4, org, 4, 64);
            // Leave behind resident lines, a pending MSHR, an eviction,
            // and nonzero stats/effect counters.
            for (i, addr) in [0x000u64, 0x040, 0x080, 0x0c0, 0x100].iter().enumerate() {
                c.probe(*addr, FillOrigin::Demand, i as u64);
                c.fill(*addr, i as u64);
            }
            c.probe(0x200, FillOrigin::Prefetch, 9);
            c.probe(0x000, FillOrigin::Demand, 10);

            let mut w = ByteWriter::new();
            c.encode_state(&mut w);
            let bytes = w.into_bytes();
            let mut r = ByteReader::new(&bytes);
            let back = Cache::decode_state(&mut r).expect("own encoding must decode");
            r.expect_end().unwrap();

            // Canonical encoding: re-encoding the decoded cache is
            // byte-identical (this is what the state digest hashes).
            let mut w2 = ByteWriter::new();
            back.encode_state(&mut w2);
            assert_eq!(w2.into_bytes(), bytes);
            assert_eq!(back.stats(), c.stats());
            assert_eq!(back.effect(), c.effect());
            assert_eq!(back.resident_lines(), c.resident_lines());
            assert_eq!(back.mshrs_in_use(), c.mshrs_in_use());
        }
    }

    #[test]
    fn decode_rejects_inconsistent_set_membership() {
        let mut c = Cache::new(4, Organization::SetAssociative { sets: 2 }, 4, 64);
        c.probe(0x000, FillOrigin::Demand, 1);
        c.fill(0x000, 1);
        let mut w = ByteWriter::new();
        c.encode_state(&mut w);
        let mut bytes = w.into_bytes();
        let len = bytes.len();
        // Layout tail: ..., set-member addr (8), evicted-unread len (8),
        // stats+effect (13×8). Flip a byte of the set-member address so it
        // no longer names a resident line: decoding must fail typed, not
        // panic.
        let member_pos = len - 13 * 8 - 8 - 8;
        bytes[member_pos] ^= 0xff;
        let mut r = ByteReader::new(&bytes);
        match Cache::decode_state(&mut r) {
            Err(DecodeError::Malformed { .. }) => {}
            other => panic!("expected malformed rejection, got {other:?}"),
        }
    }
}
