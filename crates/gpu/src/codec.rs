//! Minimal little-endian binary codec for simulator snapshots.
//!
//! The checkpoint/resume subsystem serializes the complete architectural
//! state of the simulator (caches, MSHRs, DRAM queues, prefetchers, warp
//! buffer) into a versioned, checksummed byte stream. Like `trace_io` in
//! the core crate, this is hand-rolled: the workspace builds with zero
//! external dependencies, so there is no serde to lean on.
//!
//! Two invariants matter more than speed here:
//!
//! - **Determinism** — the same architectural state must always encode to
//!   the same bytes, because the per-epoch *state digest* (FNV-1a over the
//!   encoded payload) is how a resumed run proves itself bit-identical to
//!   an uninterrupted one. Callers are responsible for iterating hash maps
//!   in sorted key order; the codec itself is a plain byte pipe.
//! - **No panic paths on decode** — checkpoints may be truncated or
//!   corrupted by the very crash they exist to survive. Every read is
//!   bounds-checked and every failure is a typed [`DecodeError`].
//!
//! # Examples
//!
//! ```
//! use rt_gpu_sim::{ByteReader, ByteWriter};
//!
//! let mut w = ByteWriter::new();
//! w.put_u64(0xdead_beef);
//! w.put_bool(true);
//! let bytes = w.into_bytes();
//!
//! let mut r = ByteReader::new(&bytes);
//! assert_eq!(r.take_u64().unwrap(), 0xdead_beef);
//! assert!(r.take_bool().unwrap());
//! assert_eq!(r.remaining(), 0);
//! ```

use std::fmt;

/// FNV-1a 64-bit hash of a byte slice.
///
/// Used both as the snapshot checksum and as the per-epoch state digest
/// (hashing the canonical encoded state gives digest/serialization
/// consistency from a single code path).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A typed decode failure. Every malformed, truncated, or corrupted
/// snapshot maps to one of these variants — the codec has no panic paths.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The input ended before a field could be read in full.
    UnexpectedEof {
        /// Byte offset at which the read started.
        offset: usize,
        /// Bytes the field needed.
        needed: usize,
    },
    /// The file does not start with the snapshot magic bytes.
    BadMagic,
    /// The snapshot was written by an unknown format version.
    UnsupportedVersion {
        /// The version number found in the header.
        found: u32,
    },
    /// The payload checksum does not match the stored checksum.
    ChecksumMismatch {
        /// Checksum stored in the file.
        expected: u64,
        /// Checksum recomputed over the payload.
        found: u64,
    },
    /// A field decoded to a value no encoder produces (bad enum tag,
    /// non-0/1 bool, impossible length, trailing bytes).
    Malformed {
        /// What was wrong.
        what: String,
    },
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::UnexpectedEof { offset, needed } => write!(
                f,
                "unexpected end of snapshot: needed {needed} byte(s) at offset {offset}"
            ),
            DecodeError::BadMagic => write!(f, "not a snapshot file (bad magic)"),
            DecodeError::UnsupportedVersion { found } => {
                write!(f, "unsupported snapshot version {found}")
            }
            DecodeError::ChecksumMismatch { expected, found } => write!(
                f,
                "snapshot checksum mismatch: stored {expected:#018x}, computed {found:#018x}"
            ),
            DecodeError::Malformed { what } => write!(f, "malformed snapshot: {what}"),
        }
    }
}

impl std::error::Error for DecodeError {}

impl DecodeError {
    /// Convenience constructor for [`DecodeError::Malformed`].
    pub fn malformed(what: impl Into<String>) -> DecodeError {
        DecodeError::Malformed { what: what.into() }
    }
}

/// An append-only little-endian byte sink.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// An empty writer.
    pub fn new() -> ByteWriter {
        ByteWriter::default()
    }

    /// The bytes written so far.
    pub fn bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Consumes the writer, returning the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a `u32`, little-endian.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64`, little-endian.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f32` as its IEEE-754 bit pattern, little-endian.
    /// Bit-exact round-trip for every value, NaN payloads included.
    pub fn put_f32(&mut self, v: f32) {
        self.put_u32(v.to_bits());
    }

    /// Appends an `i64`, little-endian two's complement.
    pub fn put_i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `usize` as a `u64` (snapshots are portable across
    /// pointer widths).
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Appends a bool as one byte (0 or 1).
    pub fn put_bool(&mut self, v: bool) {
        self.buf.push(u8::from(v));
    }

    /// Appends a sequence length prefix (as `u64`).
    pub fn put_len(&mut self, n: usize) {
        self.put_u64(n as u64);
    }

    /// Appends raw bytes with no length prefix.
    pub fn put_bytes(&mut self, b: &[u8]) {
        self.buf.extend_from_slice(b);
    }
}

/// A bounds-checked little-endian byte source over a borrowed slice.
#[derive(Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// A reader positioned at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> ByteReader<'a> {
        ByteReader { buf, pos: 0 }
    }

    /// Bytes left to read.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Current byte offset from the start of the input.
    pub fn position(&self) -> usize {
        self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.remaining() < n {
            return Err(DecodeError::UnexpectedEof {
                offset: self.pos,
                needed: n,
            });
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads one byte.
    pub fn take_u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn take_u32(&mut self) -> Result<u32, DecodeError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `u64`.
    pub fn take_u64(&mut self) -> Result<u64, DecodeError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Reads a little-endian `i64`.
    pub fn take_i64(&mut self) -> Result<i64, DecodeError> {
        Ok(self.take_u64()? as i64)
    }

    /// Reads an `f32` stored as its IEEE-754 bit pattern.
    pub fn take_f32(&mut self) -> Result<f32, DecodeError> {
        Ok(f32::from_bits(self.take_u32()?))
    }

    /// Reads a `usize` encoded as `u64`, rejecting values that do not fit
    /// the host's pointer width.
    pub fn take_usize(&mut self) -> Result<usize, DecodeError> {
        let v = self.take_u64()?;
        usize::try_from(v).map_err(|_| DecodeError::malformed("usize value out of range"))
    }

    /// Reads a bool byte; anything but 0 or 1 is malformed.
    pub fn take_bool(&mut self) -> Result<bool, DecodeError> {
        match self.take_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            v => Err(DecodeError::malformed(format!("bad bool byte {v}"))),
        }
    }

    /// Reads a sequence length prefix. `min_elem_bytes` is the smallest
    /// possible encoding of one element; a length whose elements could
    /// not all fit in the remaining input is rejected immediately, so a
    /// corrupted length field cannot drive a huge allocation.
    pub fn take_len(&mut self, min_elem_bytes: usize) -> Result<usize, DecodeError> {
        let n = self.take_usize()?;
        let need = n.checked_mul(min_elem_bytes.max(1));
        match need {
            Some(need) if need <= self.remaining() => Ok(n),
            _ => Err(DecodeError::malformed(format!(
                "sequence length {n} exceeds remaining input"
            ))),
        }
    }

    /// Reads exactly `n` raw bytes.
    pub fn take_bytes(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        self.take(n)
    }

    /// Fails with a typed error if any input remains unread.
    pub fn expect_end(&self) -> Result<(), DecodeError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(DecodeError::malformed(format!(
                "{} trailing byte(s) after decoded state",
                self.remaining()
            )))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_primitives() {
        let mut w = ByteWriter::new();
        w.put_u8(7);
        w.put_u32(0x1234_5678);
        w.put_u64(u64::MAX);
        w.put_i64(-42);
        w.put_usize(99);
        w.put_bool(true);
        w.put_bool(false);
        w.put_len(3);
        w.put_bytes(b"abc");
        let bytes = w.into_bytes();

        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.take_u8().unwrap(), 7);
        assert_eq!(r.take_u32().unwrap(), 0x1234_5678);
        assert_eq!(r.take_u64().unwrap(), u64::MAX);
        assert_eq!(r.take_i64().unwrap(), -42);
        assert_eq!(r.take_usize().unwrap(), 99);
        assert!(r.take_bool().unwrap());
        assert!(!r.take_bool().unwrap());
        assert_eq!(r.take_len(1).unwrap(), 3);
        assert_eq!(r.take_bytes(3).unwrap(), b"abc");
        r.expect_end().unwrap();
    }

    #[test]
    fn truncated_reads_are_typed_eof() {
        let mut r = ByteReader::new(&[1, 2, 3]);
        match r.take_u64() {
            Err(DecodeError::UnexpectedEof { offset: 0, needed: 8 }) => {}
            other => panic!("expected EOF error, got {other:?}"),
        }
    }

    #[test]
    fn bad_bool_and_oversized_length_are_malformed() {
        let mut r = ByteReader::new(&[9]);
        assert!(matches!(r.take_bool(), Err(DecodeError::Malformed { .. })));

        // A length prefix claiming more elements than bytes remain.
        let mut w = ByteWriter::new();
        w.put_len(1_000_000);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert!(matches!(r.take_len(8), Err(DecodeError::Malformed { .. })));
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut r = ByteReader::new(&[0]);
        assert!(r.expect_end().is_err());
        r.take_u8().unwrap();
        r.expect_end().unwrap();
    }

    #[test]
    fn fnv_is_stable_and_order_sensitive() {
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(fnv1a64(b"ab"), fnv1a64(b"ba"));
        assert_eq!(fnv1a64(b"treelet"), fnv1a64(b"treelet"));
    }
}
