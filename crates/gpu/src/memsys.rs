//! The full memory hierarchy: per-SM L1 caches, a shared L2, and
//! multi-channel DRAM, advanced cycle by cycle in the core clock domain.
//!
//! Matches the paper's Table 1 configuration by default: 64 KB fully
//! associative LRU L1 at 20 cycles, 3 MB 16-way LRU L2 at 160 cycles,
//! 1365 MHz core / 3500 MHz memory clocks, 4 DRAM channels with a 256-byte
//! partition stride.

use crate::cache::{
    decode_origin, encode_origin, Cache, CacheStats, FillOrigin, Organization, PrefetchEffect,
    ProbeOutcome,
};
use crate::codec::{ByteReader, ByteWriter, DecodeError};
use crate::dram::{Dram, DramConfig};
use crate::table::{FxHashMap, FxHashSet, IdWindow};
use rt_rng::{Rng, SmallRng};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// Unique identifier of an accepted memory access.
pub type RequestId = u64;

/// What kind of data a request fetches (for latency accounting).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// A BVH node record.
    Node,
    /// Triangle (primitive) data.
    Triangle,
    /// Prefetcher metadata (the node-to-treelet mapping table).
    Meta,
    /// A prefetch of any data.
    Prefetch,
}

impl AccessKind {
    /// Canonical snapshot tag byte (also the sort key for encoding the
    /// per-kind latency map deterministically).
    pub fn tag(self) -> u8 {
        match self {
            AccessKind::Node => 0,
            AccessKind::Triangle => 1,
            AccessKind::Meta => 2,
            AccessKind::Prefetch => 3,
        }
    }

    /// Inverse of [`AccessKind::tag`]; unknown tags are a typed decode
    /// error, never a panic.
    pub fn from_tag(t: u8) -> Result<AccessKind, DecodeError> {
        match t {
            0 => Ok(AccessKind::Node),
            1 => Ok(AccessKind::Triangle),
            2 => Ok(AccessKind::Meta),
            3 => Ok(AccessKind::Prefetch),
            t => Err(DecodeError::malformed(format!(
                "unknown access kind tag {t}"
            ))),
        }
    }
}

/// Result of issuing an access this cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Issue {
    /// L1 hit; the completion will be delivered after the L1 latency.
    Hit(RequestId),
    /// Miss or merged with an in-flight fetch; completion delivered when
    /// the line arrives.
    Pending(RequestId),
    /// A prefetch that found its line already present or in flight and
    /// was dropped.
    PrefetchDropped,
    /// Resources (MSHRs) are exhausted; retry on a later cycle.
    Retry,
}

impl Issue {
    /// The request id, if the access was accepted.
    pub fn request_id(&self) -> Option<RequestId> {
        match self {
            Issue::Hit(id) | Issue::Pending(id) => Some(*id),
            _ => None,
        }
    }
}

/// Deterministic, seeded fault injection for robustness testing.
///
/// Faults perturb *timing only*: latency spikes on the L1→L2 hop, delayed
/// DRAM sends, and (for livelock testing) a swallowed DRAM response. The
/// functional result of a simulation — which lines are fetched, what the
/// traversal computes — is unchanged; only cycle counts move. All faults
/// draw from one RNG seeded with `seed`, so a faulty run is exactly
/// reproducible.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultInjection {
    /// Seed for the fault RNG.
    pub seed: u64,
    /// Probability that an L1-miss hop to the L2 suffers an extra delay.
    pub spike_probability: f64,
    /// Extra core cycles added when a spike fires.
    pub spike_cycles: u64,
    /// Probability that a DRAM send is deferred.
    pub dram_delay_probability: f64,
    /// Extra core cycles a deferred DRAM send waits before issuing.
    pub dram_delay_cycles: u64,
    /// Swallow the Nth (0-based) new DRAM send entirely: the line is
    /// marked in flight but DRAM never answers, wedging every waiter —
    /// a deterministic livelock for exercising the watchdog.
    pub drop_dram_response: Option<u64>,
}

impl FaultInjection {
    /// A storm of latency faults (no dropped responses): 20% of L2 hops
    /// spike by 200 cycles, 10% of DRAM sends stall 400 cycles.
    pub fn latency_storm(seed: u64) -> Self {
        FaultInjection {
            seed,
            spike_probability: 0.2,
            spike_cycles: 200,
            dram_delay_probability: 0.1,
            dram_delay_cycles: 400,
            drop_dram_response: None,
        }
    }

    /// No latency faults, but the `n`th new DRAM send is swallowed —
    /// a guaranteed livelock once any ray needs that line.
    pub fn drop_nth_dram_send(seed: u64, n: u64) -> Self {
        FaultInjection {
            seed,
            spike_probability: 0.0,
            spike_cycles: 0,
            dram_delay_probability: 0.0,
            dram_delay_cycles: 0,
            drop_dram_response: Some(n),
        }
    }
}

/// Request-conservation audit of a [`MemorySystem`].
///
/// Every request id handed out by [`MemorySystem::access`] must receive
/// exactly one completion. The system counts issues and completions as it
/// runs (always, in every build); this report exposes the tallies so
/// MSHR leaks (a request issued but never answered) and double responses
/// show up as arithmetic instead of silent hangs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AuditReport {
    /// Request ids allocated.
    pub issued: u64,
    /// Completions delivered (including silently-completed L2 prefetches).
    pub completed: u64,
    /// Requests still in flight.
    pub outstanding: usize,
    /// Completions for a request that was already completed — always a
    /// bug in the hierarchy.
    pub double_completions: u64,
    /// DRAM responses swallowed by fault injection.
    pub dropped_responses: u64,
}

impl AuditReport {
    /// `true` when the books balance: no double completions, no faulted
    /// drops, and every issued request either completed or is still
    /// legitimately in flight.
    pub fn is_clean(&self) -> bool {
        self.double_completions == 0
            && self.dropped_responses == 0
            && self.issued == self.completed + self.outstanding as u64
    }
}

/// Memory hierarchy configuration (paper Table 1 defaults).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemConfig {
    /// Cache line size in bytes.
    pub line_bytes: u64,
    /// L1 capacity in lines (per SM).
    pub l1_lines: usize,
    /// L1 MSHR entries (per SM).
    pub l1_mshrs: usize,
    /// L1 hit latency in core cycles.
    pub l1_latency: u64,
    /// L2 capacity in lines (shared).
    pub l2_lines: usize,
    /// L2 sets (ways = lines / sets).
    pub l2_sets: u64,
    /// L2 MSHR entries.
    pub l2_mshrs: usize,
    /// L2 access latency in core cycles (includes interconnect).
    pub l2_latency: u64,
    /// Number of L2 memory partitions (the paper's L2 is "divided into
    /// multiple memory partitions"); each partition services probes
    /// independently.
    pub l2_partitions: usize,
    /// Address interleave between partitions, bytes.
    pub l2_partition_stride: u64,
    /// L2 probes serviced per partition per core cycle.
    pub l2_ports: usize,
    /// Core / interconnect / L2 clock in MHz.
    pub core_clock_mhz: u64,
    /// Memory clock in MHz.
    pub mem_clock_mhz: u64,
    /// DRAM parameters.
    pub dram: DramConfig,
    /// Optional deterministic fault injection (None = faithful timing).
    pub fault_injection: Option<FaultInjection>,
}

impl MemConfig {
    /// The paper's Table 1 configuration.
    pub fn paper_default() -> Self {
        MemConfig {
            line_bytes: 64,
            l1_lines: 1024, // 64 KB
            l1_mshrs: 64,
            l1_latency: 20,
            l2_lines: 49_152, // 3 MB
            l2_sets: 3_072,   // 16-way
            l2_mshrs: 1_024,
            l2_latency: 160,
            l2_partitions: 4,
            l2_partition_stride: 256,
            l2_ports: 1,
            core_clock_mhz: 1_365,
            mem_clock_mhz: 3_500,
            dram: DramConfig::paper_default(),
            fault_injection: None,
        }
    }
}

impl Default for MemConfig {
    fn default() -> Self {
        MemConfig::paper_default()
    }
}

/// Latency histogram with fixed-width bins (plus an overflow bin),
/// supporting mean and percentile queries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyHistogram {
    /// Bin width in cycles.
    bin_cycles: u64,
    /// Counts per bin; the last bin collects overflows.
    bins: Vec<u64>,
    count: u64,
    total: u64,
}

impl LatencyHistogram {
    /// 64 bins of 64 cycles each covers the 0–4096-cycle range the RT
    /// unit's loads land in; slower completions go to the overflow bin.
    fn new() -> Self {
        LatencyHistogram {
            bin_cycles: 64,
            bins: vec![0; 65],
            count: 0,
            total: 0,
        }
    }

    fn record(&mut self, latency: u64) {
        let bin = ((latency / self.bin_cycles) as usize).min(self.bins.len() - 1);
        self.bins[bin] += 1;
        self.count += 1;
        self.total += latency;
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean latency in cycles (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total as f64 / self.count as f64
        }
    }

    /// Latency at percentile `p`, reported as the upper bound of the
    /// containing bin (0.0 when empty).
    ///
    /// `p` is clamped to `[0, 100]` — library code stays panic-free, so a
    /// caller asking for `p101` gets the maximum and `p-5` the minimum.
    pub fn percentile(&self, p: f64) -> f64 {
        let p = p.clamp(0.0, 100.0);
        if self.count == 0 {
            return 0.0;
        }
        let target = (self.count as f64 * p / 100.0).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &c) in self.bins.iter().enumerate() {
            seen += c;
            if seen >= target {
                return ((i + 1) as u64 * self.bin_cycles) as f64;
            }
        }
        (self.bins.len() as u64 * self.bin_cycles) as f64
    }
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram::new()
    }
}

/// Aggregate latency / traffic statistics.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MemStats {
    /// Completion latency histograms, indexed by [`AccessKind::tag`].
    latency: [Option<LatencyHistogram>; 4],
    /// Lines transferred from L2 toward an L1 (hits and miss fills).
    pub l2_to_l1_lines: u64,
    /// Lines transferred from DRAM into L2.
    pub dram_to_l2_lines: u64,
}

impl MemStats {
    /// Mean completion latency of requests of `kind`, in core cycles.
    pub fn mean_latency(&self, kind: AccessKind) -> f64 {
        self.latency[kind.tag() as usize]
            .as_ref()
            .map_or(0.0, LatencyHistogram::mean)
    }

    /// Number of completed requests of `kind`.
    pub fn completed(&self, kind: AccessKind) -> u64 {
        self.latency[kind.tag() as usize]
            .as_ref()
            .map_or(0, LatencyHistogram::count)
    }

    /// The latency histogram of `kind`, if any request of that kind
    /// completed.
    pub fn latency_histogram(&self, kind: AccessKind) -> Option<&LatencyHistogram> {
        self.latency[kind.tag() as usize].as_ref()
    }

    fn record(&mut self, kind: AccessKind, latency: u64) {
        self.latency[kind.tag() as usize]
            .get_or_insert_with(LatencyHistogram::new)
            .record(latency);
    }
}

#[derive(Debug, Clone, Copy)]
enum Event {
    /// Deliver an L1-hit completion.
    L1HitDone { sm: usize, req: RequestId },
    /// An L1 miss (or direct L2 prefetch) reaches the L2 probe queue.
    L2Arrive {
        who: L2Requester,
        line: u64,
        origin: FillOrigin,
    },
    /// An L2 hit (or DRAM fill) delivers the line into an L1.
    L1Fill { sm: usize, line: u64 },
    /// An L2 miss issues to DRAM.
    DramSend { line: u64 },
}

/// Who is waiting on an L2 line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum L2Requester {
    /// An L1 miss from this SM: the line is forwarded into its L1.
    Sm(usize),
    /// A prefetch targeting the L2 itself (no L1 fill).
    L2Prefetch,
}

/// The memory hierarchy. One instance serves all SMs.
///
/// Drive it by calling [`MemorySystem::access`] at most a few times per
/// SM per cycle, then [`MemorySystem::tick`] once per core cycle, then
/// draining completions with [`MemorySystem::drain_completed`].
#[derive(Debug)]
pub struct MemorySystem {
    config: MemConfig,
    cycle: u64,
    next_req: RequestId,
    next_seq: u64,
    l1: Vec<Cache>,
    l2: Cache,
    dram: Dram,
    events: BinaryHeap<Reverse<(u64, u64, usize)>>,
    event_pool: Vec<Event>,
    /// Reusable `event_pool` slots of already-fired events.
    free_events: Vec<usize>,
    /// Per-partition L2 probe queues.
    l2_queues: Vec<VecDeque<(L2Requester, u64, FillOrigin)>>,
    /// Requests waiting for an L1 line, per SM: line -> request ids.
    l1_waiters: Vec<FxHashMap<u64, Vec<RequestId>>>,
    /// SMs waiting for an L2 line.
    l2_waiters: FxHashMap<u64, Vec<usize>>,
    /// DRAM in-flight lines (avoids duplicate sends).
    dram_pending: FxHashSet<u64>,
    /// Issue metadata per live request, keyed by the monotonically
    /// allocated request id.
    meta: IdWindow<(AccessKind, u64)>,
    completed_out: Vec<Vec<RequestId>>,
    stats: MemStats,
    /// Fault-injection RNG (present iff faults are configured).
    fault_rng: Option<SmallRng>,
    /// New DRAM sends so far (the drop fault's index space).
    dram_sends: u64,
    /// Completions delivered (audit).
    audit_completed: u64,
    /// Completions for already-completed requests (audit; always a bug).
    audit_double_completions: u64,
    /// DRAM responses swallowed by fault injection (audit).
    audit_dropped: u64,
}

impl MemorySystem {
    /// Creates the hierarchy for `num_sms` streaming multiprocessors.
    ///
    /// # Panics
    ///
    /// Panics if `num_sms` is zero or the configuration is inconsistent.
    pub fn new(config: MemConfig, num_sms: usize) -> MemorySystem {
        assert!(num_sms > 0, "need at least one SM");
        let l1 = (0..num_sms)
            .map(|_| {
                Cache::new(
                    config.l1_lines,
                    Organization::FullyAssociative,
                    config.l1_mshrs,
                    config.line_bytes,
                )
            })
            .collect();
        let l2 = Cache::new(
            config.l2_lines,
            Organization::SetAssociative {
                sets: config.l2_sets,
            },
            config.l2_mshrs,
            config.line_bytes,
        );
        MemorySystem {
            l1,
            l2,
            dram: Dram::new(config.dram),
            config,
            cycle: 0,
            next_req: 0,
            next_seq: 0,
            events: BinaryHeap::with_capacity(256),
            event_pool: Vec::with_capacity(256),
            free_events: Vec::with_capacity(256),
            l2_queues: (0..config.l2_partitions)
                .map(|_| VecDeque::with_capacity(64))
                .collect(),
            l1_waiters: (0..num_sms).map(|_| FxHashMap::default()).collect(),
            l2_waiters: FxHashMap::default(),
            dram_pending: FxHashSet::default(),
            meta: IdWindow::new(),
            completed_out: vec![Vec::new(); num_sms],
            stats: MemStats::default(),
            fault_rng: config
                .fault_injection
                .map(|f| SmallRng::seed_from_u64(f.seed)),
            dram_sends: 0,
            audit_completed: 0,
            audit_double_completions: 0,
            audit_dropped: 0,
        }
    }

    /// Current core cycle.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Cache line size.
    pub fn line_bytes(&self) -> u64 {
        self.config.line_bytes
    }

    /// The configuration this system was built with.
    pub fn config(&self) -> &MemConfig {
        &self.config
    }

    fn schedule(&mut self, at: u64, event: Event) {
        let idx = match self.free_events.pop() {
            Some(idx) => {
                self.event_pool[idx] = event;
                idx
            }
            None => {
                self.event_pool.push(event);
                self.event_pool.len() - 1
            }
        };
        self.events.push(Reverse((at, self.next_seq, idx)));
        self.next_seq += 1;
    }

    /// Issues an access from `sm` for the line containing `addr`.
    ///
    /// `origin` distinguishes demand loads from prefetches (which may be
    /// dropped); `kind` labels the request for latency statistics.
    ///
    /// # Panics
    ///
    /// Panics if `sm` is out of range.
    pub fn access(&mut self, sm: usize, addr: u64, origin: FillOrigin, kind: AccessKind) -> Issue {
        let line = self.l1[sm].line_of(addr);
        match self.l1[sm].probe(addr, origin, self.cycle) {
            ProbeOutcome::Hit { .. } => {
                if origin == FillOrigin::Prefetch {
                    return Issue::PrefetchDropped;
                }
                let req = self.alloc_req(kind);
                self.schedule(
                    self.cycle + self.config.l1_latency,
                    Event::L1HitDone { sm, req },
                );
                Issue::Hit(req)
            }
            ProbeOutcome::PendingHit => {
                if origin == FillOrigin::Prefetch {
                    return Issue::PrefetchDropped;
                }
                let req = self.alloc_req(kind);
                self.l1_waiters[sm].entry(line).or_default().push(req);
                Issue::Pending(req)
            }
            ProbeOutcome::Miss => {
                let req = self.alloc_req(kind);
                self.l1_waiters[sm].entry(line).or_default().push(req);
                let spike = self.fault_spike();
                self.schedule(
                    self.cycle + self.config.l1_latency + spike,
                    Event::L2Arrive {
                        who: L2Requester::Sm(sm),
                        line,
                        origin,
                    },
                );
                Issue::Pending(req)
            }
            ProbeOutcome::NoMshr => Issue::Retry,
        }
    }

    fn alloc_req(&mut self, kind: AccessKind) -> RequestId {
        let req = self.next_req;
        self.next_req += 1;
        self.meta.insert(req, (kind, self.cycle));
        req
    }

    /// Issues a prefetch of the line containing `addr` directly into the
    /// shared L2, bypassing the L1s (an alternative prefetch destination
    /// that avoids L1 pollution). The line is installed when DRAM
    /// responds; no completion is delivered.
    ///
    /// Returns [`Issue::PrefetchDropped`] if the line is already resident
    /// or in flight at the L2.
    pub fn prefetch_l2(&mut self, addr: u64) -> Issue {
        let line = self.l2.line_of(addr);
        if self.l2.contains(line) || self.l2.is_pending(line) {
            // Count the dropped probe for effectiveness accounting.
            let _ = self.l2.probe(line, FillOrigin::Prefetch, self.cycle);
            return Issue::PrefetchDropped;
        }
        self.schedule(
            self.cycle,
            Event::L2Arrive {
                who: L2Requester::L2Prefetch,
                line,
                origin: FillOrigin::Prefetch,
            },
        );
        let req = self.alloc_req(AccessKind::Prefetch);
        // L2 prefetches complete silently; drop the metadata now so the
        // request is not counted as outstanding (for the audit, it
        // completes the moment it is issued).
        self.meta.remove(req);
        self.audit_completed += 1;
        Issue::Pending(req)
    }

    /// Rolls the fault RNG for an L1→L2 latency spike.
    fn fault_spike(&mut self) -> u64 {
        let Some(f) = self.config.fault_injection else {
            return 0;
        };
        if f.spike_probability <= 0.0 || f.spike_cycles == 0 {
            return 0;
        }
        let rng = self.fault_rng.as_mut().expect("fault rng present");
        if rng.gen_bool(f.spike_probability) {
            f.spike_cycles
        } else {
            0
        }
    }

    /// Rolls the fault RNG for a deferred DRAM send.
    fn fault_dram_delay(&mut self) -> u64 {
        let Some(f) = self.config.fault_injection else {
            return 0;
        };
        if f.dram_delay_probability <= 0.0 || f.dram_delay_cycles == 0 {
            return 0;
        }
        let rng = self.fault_rng.as_mut().expect("fault rng present");
        if rng.gen_bool(f.dram_delay_probability) {
            f.dram_delay_cycles
        } else {
            0
        }
    }

    /// Advances the hierarchy by one core cycle.
    pub fn tick(&mut self) {
        self.cycle += 1;
        // 1. Fire due events.
        while let Some(&Reverse((t, _, idx))) = self.events.peek() {
            if t > self.cycle {
                break;
            }
            self.events.pop();
            let event = self.event_pool[idx];
            self.free_events.push(idx);
            self.handle_event(event);
        }
        // 2. Service each L2 partition's probe queue (bounded ports per
        // partition per cycle).
        for partition in 0..self.l2_queues.len() {
            'ports: for _ in 0..self.config.l2_ports {
                let Some(&(who, line, origin)) = self.l2_queues[partition].front() else {
                    break;
                };
                match self.l2.probe(line, origin, self.cycle) {
                    ProbeOutcome::Hit { .. } => {
                        self.l2_queues[partition].pop_front();
                        if let L2Requester::Sm(sm) = who {
                            self.stats.l2_to_l1_lines += 1;
                            self.schedule(
                                self.cycle + self.config.l2_latency,
                                Event::L1Fill { sm, line },
                            );
                        }
                    }
                    ProbeOutcome::PendingHit => {
                        self.l2_queues[partition].pop_front();
                        if let L2Requester::Sm(sm) = who {
                            self.add_l2_waiter(line, sm);
                        }
                    }
                    ProbeOutcome::Miss => {
                        self.l2_queues[partition].pop_front();
                        if let L2Requester::Sm(sm) = who {
                            self.add_l2_waiter(line, sm);
                        }
                        self.schedule(
                            self.cycle + self.config.l2_latency,
                            Event::DramSend { line },
                        );
                    }
                    // Head-of-line stall in this partition; retry next
                    // cycle.
                    ProbeOutcome::NoMshr => break 'ports,
                }
            }
        }
        // 3. Drain DRAM completions.
        let mem_now = self.mem_cycles(self.cycle);
        for line in self.dram.drain_completed(mem_now) {
            self.dram_pending.remove(&line);
            self.stats.dram_to_l2_lines += 1;
            self.l2.fill(line, self.cycle);
            if let Some(sms) = self.l2_waiters.remove(&line) {
                for sm in sms {
                    self.stats.l2_to_l1_lines += 1;
                    self.schedule(self.cycle, Event::L1Fill { sm, line });
                }
            }
        }
    }

    fn add_l2_waiter(&mut self, line: u64, sm: usize) {
        let waiters = self.l2_waiters.entry(line).or_default();
        if !waiters.contains(&sm) {
            waiters.push(sm);
        }
    }

    fn handle_event(&mut self, event: Event) {
        match event {
            Event::L1HitDone { sm, req } => self.complete(sm, req),
            Event::L2Arrive { who, line, origin } => {
                let p = self.l2_partition_of(line);
                self.l2_queues[p].push_back((who, line, origin));
            }
            Event::L1Fill { sm, line } => {
                self.l1[sm].fill(line, self.cycle);
                if let Some(reqs) = self.l1_waiters[sm].remove(&line) {
                    for req in reqs {
                        self.complete(sm, req);
                    }
                }
            }
            Event::DramSend { line } => {
                let delay = self.fault_dram_delay();
                if delay > 0 {
                    self.schedule(self.cycle + delay, Event::DramSend { line });
                } else if self.dram_pending.insert(line) {
                    let send_index = self.dram_sends;
                    self.dram_sends += 1;
                    let dropped = self
                        .config
                        .fault_injection
                        .and_then(|f| f.drop_dram_response)
                        .is_some_and(|n| n == send_index);
                    if dropped {
                        // The line stays marked in flight but DRAM never
                        // answers: every waiter is wedged.
                        self.audit_dropped += 1;
                    } else {
                        let mem_now = self.mem_cycles(self.cycle);
                        self.dram.enqueue(line, line, mem_now);
                    }
                }
            }
        }
    }

    fn complete(&mut self, sm: usize, req: RequestId) {
        if let Some((kind, issued)) = self.meta.remove(req) {
            self.stats.record(kind, self.cycle - issued);
            self.audit_completed += 1;
        } else {
            // A completion for a request with no live metadata is a
            // second response — an MSHR/waiter-list bookkeeping bug.
            self.audit_double_completions += 1;
            debug_assert!(false, "double completion of request {req}");
        }
        self.completed_out[sm].push(req);
    }

    /// L2 partition servicing `line`.
    fn l2_partition_of(&self, line: u64) -> usize {
        ((line / self.config.l2_partition_stride) % self.l2_queues.len() as u64) as usize
    }

    /// Converts a core-cycle count into memory-clock cycles.
    pub fn mem_cycles(&self, core_cycles: u64) -> u64 {
        (core_cycles as u128 * self.config.mem_clock_mhz as u128
            / self.config.core_clock_mhz as u128) as u64
    }

    /// Requests completed for `sm` since the last drain.
    pub fn drain_completed(&mut self, sm: usize) -> Vec<RequestId> {
        std::mem::take(&mut self.completed_out[sm])
    }

    /// Moves the requests completed for `sm` since the last drain into
    /// `out` (cleared first). Both buffers keep their capacity, so a
    /// caller draining every cycle allocates nothing in steady state.
    pub fn drain_completed_into(&mut self, sm: usize, out: &mut Vec<RequestId>) {
        out.clear();
        std::mem::swap(out, &mut self.completed_out[sm]);
    }

    /// Smallest core cycle whose memory-clock conversion reaches
    /// `mem_cycle`.
    fn core_cycle_for_mem(&self, mem_cycle: u64) -> u64 {
        (mem_cycle as u128 * self.config.core_clock_mhz as u128)
            .div_ceil(self.config.mem_clock_mhz as u128) as u64
    }

    /// The earliest core cycle at which the hierarchy has internal work
    /// to do — a scheduled event firing or a DRAM completion becoming
    /// drainable — or `None` when nothing is scheduled at all.
    ///
    /// A tick that advances the clock *to* the returned cycle performs
    /// that work, so idle-skipping callers may jump at most to the cycle
    /// before it.
    pub fn next_event_cycle(&self) -> Option<u64> {
        let mut next = self.events.peek().map(|&Reverse((t, _, _))| t);
        if let Some(mem_t) = self.dram.next_completion() {
            let core_t = self.core_cycle_for_mem(mem_t);
            next = Some(next.map_or(core_t, |n| n.min(core_t)));
        }
        next
    }

    /// `true` when ticking the hierarchy before [`next_event_cycle`]
    /// would be a no-op: no queued L2 probes to service and no
    /// undelivered completions.
    pub fn can_skip_idle(&self) -> bool {
        self.l2_queues.iter().all(VecDeque::is_empty)
            && self.completed_out.iter().all(Vec::is_empty)
    }

    /// Advances the core clock directly to `cycle` without simulating the
    /// intervening cycles.
    ///
    /// The caller must ensure the skipped cycles are genuinely idle:
    /// [`can_skip_idle`](MemorySystem::can_skip_idle) holds and `cycle`
    /// is strictly before [`next_event_cycle`](MemorySystem::next_event_cycle).
    pub fn skip_idle_to(&mut self, cycle: u64) {
        debug_assert!(cycle >= self.cycle, "idle skip cannot rewind the clock");
        debug_assert!(self.can_skip_idle(), "idle skip with serviceable work");
        debug_assert!(
            self.next_event_cycle().is_none_or(|t| t > cycle),
            "idle skip past a scheduled event"
        );
        self.cycle = cycle;
    }

    /// `true` while any request is in flight anywhere in the hierarchy.
    pub fn busy(&self) -> bool {
        !self.meta.is_empty()
            || self.l2_queues.iter().any(|q| !q.is_empty())
            || self.dram.in_flight() > 0
            || !self.events.is_empty()
    }

    /// Latency / traffic statistics.
    pub fn stats(&self) -> &MemStats {
        &self.stats
    }

    /// Request-conservation audit: issues vs completions vs in-flight.
    pub fn audit(&self) -> AuditReport {
        AuditReport {
            issued: self.next_req,
            completed: self.audit_completed,
            outstanding: self.meta.len(),
            double_completions: self.audit_double_completions,
            dropped_responses: self.audit_dropped,
        }
    }

    /// Number of requests in flight anywhere in the hierarchy.
    pub fn outstanding_requests(&self) -> usize {
        self.meta.len()
    }

    /// Ids of the in-flight requests, oldest first.
    pub fn outstanding_request_ids(&self) -> Vec<RequestId> {
        self.meta.iter().map(|(id, _)| id).collect()
    }

    /// Total entries queued across the L2 partitions.
    pub fn l2_queue_depth(&self) -> usize {
        self.l2_queues.iter().map(VecDeque::len).sum()
    }

    /// Requests waiting on an L1 fill, per SM.
    pub fn l1_waiter_counts(&self) -> Vec<usize> {
        self.l1_waiters
            .iter()
            .map(|waiters| waiters.values().map(Vec::len).sum())
            .collect()
    }

    /// Demand/prefetch counters of one L1.
    pub fn l1_stats(&self, sm: usize) -> CacheStats {
        self.l1[sm].stats()
    }

    /// Summed L1 counters across SMs.
    pub fn l1_stats_total(&self) -> CacheStats {
        let mut total = CacheStats::default();
        for c in &self.l1 {
            let s = c.stats();
            total.demand_hits_on_prefetch += s.demand_hits_on_prefetch;
            total.demand_hits_on_demand += s.demand_hits_on_demand;
            total.demand_pending_hits += s.demand_pending_hits;
            total.demand_misses += s.demand_misses;
            total.prefetch_probes += s.prefetch_probes;
            total.prefetch_misses += s.prefetch_misses;
            total.mshr_rejections += s.mshr_rejections;
            total.evictions += s.evictions;
        }
        total
    }

    /// L2 counters.
    pub fn l2_stats(&self) -> CacheStats {
        self.l2.stats()
    }

    /// MSHRs currently allocated across all L1s (MSHR pressure).
    pub fn l1_mshrs_in_use(&self) -> usize {
        self.l1.iter().map(Cache::mshrs_in_use).sum()
    }

    /// MSHRs currently allocated at the L2.
    pub fn l2_mshrs_in_use(&self) -> usize {
        self.l2.mshrs_in_use()
    }

    /// Sums the prefetch-effectiveness counters across all L1s *without*
    /// finalizing (still-unread prefetched lines are not yet classified
    /// as unused) — for mid-session snapshots.
    pub fn prefetch_effect_snapshot(&self) -> PrefetchEffect {
        let mut total = PrefetchEffect::default();
        for c in &self.l1 {
            let e = c.effect();
            total.too_late += e.too_late;
            total.late += e.late;
            total.timely += e.timely;
            total.early += e.early;
            total.unused += e.unused;
        }
        total
    }

    /// Finalizes and sums the prefetch-effectiveness classification across
    /// all L1s (call once, at end of simulation).
    pub fn finalize_prefetch_effect(&mut self) -> PrefetchEffect {
        let mut total = PrefetchEffect::default();
        for c in &mut self.l1 {
            let e = c.finalize_effect();
            total.too_late += e.too_late;
            total.late += e.late;
            total.timely += e.timely;
            total.early += e.early;
            total.unused += e.unused;
        }
        total
    }

    /// Finalizes the L2's prefetch-effectiveness classification (for runs
    /// that prefetch into the L2).
    pub fn finalize_l2_prefetch_effect(&mut self) -> PrefetchEffect {
        self.l2.finalize_effect()
    }

    /// DRAM device (utilization, per-channel counters).
    pub fn dram(&self) -> &Dram {
        &self.dram
    }

    /// Mean DRAM data-bus utilization so far (Fig. 1a metric).
    pub fn dram_utilization(&self) -> f64 {
        let mem_now = self.mem_cycles(self.cycle);
        if mem_now == 0 {
            0.0
        } else {
            self.dram.utilization(mem_now)
        }
    }

    /// Serializes the complete hierarchy state — caches, MSHRs, event
    /// queue, DRAM queues, in-flight request metadata, statistics, audit
    /// counters, and the fault-injection RNG — into `w`.
    ///
    /// The encoding is canonical: hash maps are written in sorted key
    /// order and heaps as sorted entry lists, so identical architectural
    /// state always produces identical bytes (the property the per-epoch
    /// state digests rely on). Queues and waiter lists are written
    /// verbatim because their order is architecturally meaningful.
    pub fn encode_state(&self, w: &mut ByteWriter) {
        w.put_u64(self.cycle);
        w.put_u64(self.next_req);
        w.put_u64(self.next_seq);

        w.put_len(self.l1.len());
        for cache in &self.l1 {
            cache.encode_state(w);
        }
        self.l2.encode_state(w);
        self.dram.encode_state(w);

        // Live events as (at, seq, event) triples, sorted. Pool indices
        // are compacted on decode; `seq` values are preserved so future
        // events keep ordering against `next_seq`.
        let mut live: Vec<(u64, u64, usize)> = self.events.iter().map(|Reverse(t)| *t).collect();
        live.sort_unstable();
        w.put_len(live.len());
        for (at, seq, idx) in live {
            w.put_u64(at);
            w.put_u64(seq);
            encode_event(self.event_pool[idx], w);
        }

        w.put_len(self.l2_queues.len());
        for queue in &self.l2_queues {
            w.put_len(queue.len());
            for &(who, line, origin) in queue {
                encode_requester(who, w);
                w.put_u64(line);
                encode_origin(origin, w);
            }
        }

        // Per-SM maps, flattened in (sm, line) order — the same bytes the
        // old flat sorted map produced.
        let total: usize = self.l1_waiters.iter().map(FxHashMap::len).sum();
        w.put_len(total);
        let mut lines: Vec<u64> = Vec::new();
        for (sm, waiters) in self.l1_waiters.iter().enumerate() {
            lines.clear();
            lines.extend(waiters.keys().copied());
            lines.sort_unstable();
            for &line in &lines {
                w.put_usize(sm);
                w.put_u64(line);
                let reqs = &waiters[&line];
                w.put_len(reqs.len());
                for &req in reqs {
                    w.put_u64(req);
                }
            }
        }

        let mut keys: Vec<u64> = self.l2_waiters.keys().copied().collect();
        keys.sort_unstable();
        w.put_len(keys.len());
        for line in keys {
            w.put_u64(line);
            let sms = &self.l2_waiters[&line];
            w.put_len(sms.len());
            for &sm in sms {
                w.put_usize(sm);
            }
        }

        let mut pending: Vec<u64> = self.dram_pending.iter().copied().collect();
        pending.sort_unstable();
        w.put_len(pending.len());
        for line in pending {
            w.put_u64(line);
        }

        // IdWindow iterates in ascending id order — already canonical.
        w.put_len(self.meta.len());
        for (req, &(kind, issued)) in self.meta.iter() {
            w.put_u64(req);
            w.put_u8(kind.tag());
            w.put_u64(issued);
        }

        w.put_len(self.completed_out.len());
        for out in &self.completed_out {
            w.put_len(out.len());
            for &req in out {
                w.put_u64(req);
            }
        }

        encode_mem_stats(&self.stats, w);

        match &self.fault_rng {
            None => w.put_bool(false),
            Some(rng) => {
                w.put_bool(true);
                for word in rng.state() {
                    w.put_u64(word);
                }
            }
        }
        w.put_u64(self.dram_sends);
        w.put_u64(self.audit_completed);
        w.put_u64(self.audit_double_completions);
        w.put_u64(self.audit_dropped);
    }

    /// Rebuilds a hierarchy from bytes produced by
    /// [`MemorySystem::encode_state`].
    ///
    /// `config` and `num_sms` come from the resuming run's configuration;
    /// the decoded shape must agree with them (L1 count, partition count,
    /// fault-RNG presence) or a typed [`DecodeError`] is returned. All
    /// reads are bounds-checked — corrupted input cannot panic.
    pub fn decode_state(
        r: &mut ByteReader<'_>,
        config: MemConfig,
        num_sms: usize,
    ) -> Result<MemorySystem, DecodeError> {
        let cycle = r.take_u64()?;
        let next_req = r.take_u64()?;
        let next_seq = r.take_u64()?;

        let n = r.take_len(1)?;
        if n != num_sms || num_sms == 0 {
            return Err(DecodeError::malformed(format!(
                "snapshot has {n} L1 caches but the configuration expects {num_sms}"
            )));
        }
        let mut l1 = Vec::with_capacity(n);
        for _ in 0..n {
            l1.push(Cache::decode_state(r)?);
        }
        let l2 = Cache::decode_state(r)?;
        let dram = Dram::decode_state(r)?;

        let n = r.take_len(17)?;
        let mut events = BinaryHeap::with_capacity(n);
        let mut event_pool = Vec::with_capacity(n);
        for _ in 0..n {
            let at = r.take_u64()?;
            let seq = r.take_u64()?;
            if seq >= next_seq {
                return Err(DecodeError::malformed(format!(
                    "event sequence {seq} not below next_seq {next_seq}"
                )));
            }
            let event = decode_event(r)?;
            let idx = event_pool.len();
            event_pool.push(event);
            events.push(Reverse((at, seq, idx)));
        }

        let n = r.take_len(8)?;
        if n != config.l2_partitions {
            return Err(DecodeError::malformed(format!(
                "snapshot has {n} L2 partitions but the configuration expects {}",
                config.l2_partitions
            )));
        }
        let mut l2_queues = Vec::with_capacity(n);
        for _ in 0..n {
            let entries = r.take_len(10)?;
            let mut queue = VecDeque::with_capacity(entries);
            for _ in 0..entries {
                let who = decode_requester(r)?;
                let line = r.take_u64()?;
                let origin = decode_origin(r)?;
                queue.push_back((who, line, origin));
            }
            l2_queues.push(queue);
        }

        let n = r.take_len(24)?;
        let mut l1_waiters: Vec<FxHashMap<u64, Vec<RequestId>>> =
            (0..num_sms).map(|_| FxHashMap::default()).collect();
        for _ in 0..n {
            let sm = r.take_usize()?;
            if sm >= num_sms {
                return Err(DecodeError::malformed(format!(
                    "L1 waiter names SM {sm} of {num_sms}"
                )));
            }
            let line = r.take_u64()?;
            let reqs = r.take_len(8)?;
            let mut ids = Vec::with_capacity(reqs);
            for _ in 0..reqs {
                ids.push(r.take_u64()?);
            }
            l1_waiters[sm].insert(line, ids);
        }

        let n = r.take_len(16)?;
        let mut l2_waiters: FxHashMap<u64, Vec<usize>> =
            FxHashMap::with_capacity_and_hasher(n, Default::default());
        for _ in 0..n {
            let line = r.take_u64()?;
            let sms = r.take_len(8)?;
            let mut waiting = Vec::with_capacity(sms);
            for _ in 0..sms {
                let sm = r.take_usize()?;
                if sm >= num_sms {
                    return Err(DecodeError::malformed(format!(
                        "L2 waiter names SM {sm} of {num_sms}"
                    )));
                }
                waiting.push(sm);
            }
            l2_waiters.insert(line, waiting);
        }

        let n = r.take_len(8)?;
        let mut dram_pending: FxHashSet<u64> =
            FxHashSet::with_capacity_and_hasher(n, Default::default());
        for _ in 0..n {
            dram_pending.insert(r.take_u64()?);
        }

        let n = r.take_len(17)?;
        let mut meta: IdWindow<(AccessKind, u64)> = IdWindow::new();
        let mut prev_req: Option<RequestId> = None;
        for _ in 0..n {
            let req = r.take_u64()?;
            if req >= next_req {
                return Err(DecodeError::malformed(format!(
                    "request id {req} not below next_req {next_req}"
                )));
            }
            // The id-window insert contract (and the canonical encoding)
            // require strictly increasing ids.
            if prev_req.is_some_and(|p| req <= p) {
                return Err(DecodeError::malformed(
                    "request metadata ids must be strictly increasing",
                ));
            }
            prev_req = Some(req);
            let kind = AccessKind::from_tag(r.take_u8()?)?;
            let issued = r.take_u64()?;
            meta.insert(req, (kind, issued));
        }

        let n = r.take_len(8)?;
        if n != num_sms {
            return Err(DecodeError::malformed(format!(
                "snapshot has {n} completion queues but the configuration expects {num_sms}"
            )));
        }
        let mut completed_out = Vec::with_capacity(n);
        for _ in 0..n {
            let reqs = r.take_len(8)?;
            let mut out = Vec::with_capacity(reqs);
            for _ in 0..reqs {
                out.push(r.take_u64()?);
            }
            completed_out.push(out);
        }

        let stats = decode_mem_stats(r)?;

        let fault_rng = if r.take_bool()? {
            let mut s = [0u64; 4];
            for word in &mut s {
                *word = r.take_u64()?;
            }
            Some(SmallRng::from_state(s))
        } else {
            None
        };
        if fault_rng.is_some() != config.fault_injection.is_some() {
            return Err(DecodeError::malformed(
                "fault-RNG presence does not match the configuration",
            ));
        }
        let dram_sends = r.take_u64()?;
        let audit_completed = r.take_u64()?;
        let audit_double_completions = r.take_u64()?;
        let audit_dropped = r.take_u64()?;

        Ok(MemorySystem {
            config,
            cycle,
            next_req,
            next_seq,
            l1,
            l2,
            dram,
            events,
            event_pool,
            free_events: Vec::new(),
            l2_queues,
            l1_waiters,
            l2_waiters,
            dram_pending,
            meta,
            completed_out,
            stats,
            fault_rng,
            dram_sends,
            audit_completed,
            audit_double_completions,
            audit_dropped,
        })
    }
}

fn encode_event(event: Event, w: &mut ByteWriter) {
    match event {
        Event::L1HitDone { sm, req } => {
            w.put_u8(0);
            w.put_usize(sm);
            w.put_u64(req);
        }
        Event::L2Arrive { who, line, origin } => {
            w.put_u8(1);
            encode_requester(who, w);
            w.put_u64(line);
            encode_origin(origin, w);
        }
        Event::L1Fill { sm, line } => {
            w.put_u8(2);
            w.put_usize(sm);
            w.put_u64(line);
        }
        Event::DramSend { line } => {
            w.put_u8(3);
            w.put_u64(line);
        }
    }
}

fn decode_event(r: &mut ByteReader<'_>) -> Result<Event, DecodeError> {
    match r.take_u8()? {
        0 => Ok(Event::L1HitDone {
            sm: r.take_usize()?,
            req: r.take_u64()?,
        }),
        1 => Ok(Event::L2Arrive {
            who: decode_requester(r)?,
            line: r.take_u64()?,
            origin: decode_origin(r)?,
        }),
        2 => Ok(Event::L1Fill {
            sm: r.take_usize()?,
            line: r.take_u64()?,
        }),
        3 => Ok(Event::DramSend { line: r.take_u64()? }),
        t => Err(DecodeError::malformed(format!("unknown event tag {t}"))),
    }
}

fn encode_requester(who: L2Requester, w: &mut ByteWriter) {
    match who {
        L2Requester::Sm(sm) => {
            w.put_u8(0);
            w.put_usize(sm);
        }
        L2Requester::L2Prefetch => w.put_u8(1),
    }
}

fn decode_requester(r: &mut ByteReader<'_>) -> Result<L2Requester, DecodeError> {
    match r.take_u8()? {
        0 => Ok(L2Requester::Sm(r.take_usize()?)),
        1 => Ok(L2Requester::L2Prefetch),
        t => Err(DecodeError::malformed(format!(
            "unknown L2 requester tag {t}"
        ))),
    }
}

fn encode_histogram(h: &LatencyHistogram, w: &mut ByteWriter) {
    w.put_u64(h.bin_cycles);
    w.put_len(h.bins.len());
    for &count in &h.bins {
        w.put_u64(count);
    }
    w.put_u64(h.count);
    w.put_u64(h.total);
}

fn decode_histogram(r: &mut ByteReader<'_>) -> Result<LatencyHistogram, DecodeError> {
    let bin_cycles = r.take_u64()?;
    if bin_cycles == 0 {
        return Err(DecodeError::malformed("histogram bin width must be nonzero"));
    }
    let n = r.take_len(8)?;
    if n == 0 {
        return Err(DecodeError::malformed("histogram needs at least one bin"));
    }
    let mut bins = Vec::with_capacity(n);
    for _ in 0..n {
        bins.push(r.take_u64()?);
    }
    let count = r.take_u64()?;
    let total = r.take_u64()?;
    Ok(LatencyHistogram {
        bin_cycles,
        bins,
        count,
        total,
    })
}

fn encode_mem_stats(stats: &MemStats, w: &mut ByteWriter) {
    // The array is indexed by tag, so iteration order IS sorted-tag
    // order — the same bytes the old sorted-key map encoding produced.
    let present = stats.latency.iter().flatten().count();
    w.put_len(present);
    for (tag, histogram) in stats.latency.iter().enumerate() {
        if let Some(h) = histogram {
            w.put_u8(tag as u8);
            encode_histogram(h, w);
        }
    }
    w.put_u64(stats.l2_to_l1_lines);
    w.put_u64(stats.dram_to_l2_lines);
}

fn decode_mem_stats(r: &mut ByteReader<'_>) -> Result<MemStats, DecodeError> {
    let n = r.take_len(25)?;
    let mut latency: [Option<LatencyHistogram>; 4] = Default::default();
    for _ in 0..n {
        let kind = AccessKind::from_tag(r.take_u8()?)?;
        let histogram = decode_histogram(r)?;
        if latency[kind.tag() as usize].replace(histogram).is_some() {
            return Err(DecodeError::malformed("duplicate latency histogram kind"));
        }
    }
    Ok(MemStats {
        latency,
        l2_to_l1_lines: r.take_u64()?,
        dram_to_l2_lines: r.take_u64()?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sys() -> MemorySystem {
        MemorySystem::new(MemConfig::paper_default(), 2)
    }

    fn run_until_complete(ms: &mut MemorySystem, sm: usize, req: RequestId, limit: u64) -> u64 {
        for _ in 0..limit {
            ms.tick();
            if ms.drain_completed(sm).contains(&req) {
                return ms.cycle();
            }
        }
        panic!("request {req} did not complete within {limit} cycles");
    }

    #[test]
    fn l1_hit_completes_after_l1_latency() {
        let mut ms = sys();
        // Warm the line.
        let issue = ms.access(0, 0x2_0000, FillOrigin::Demand, AccessKind::Node);
        let req = issue.request_id().unwrap();
        run_until_complete(&mut ms, 0, req, 2_000);
        let start = ms.cycle();
        let issue = ms.access(0, 0x2_0000, FillOrigin::Demand, AccessKind::Node);
        assert!(matches!(issue, Issue::Hit(_)));
        let done = run_until_complete(&mut ms, 0, issue.request_id().unwrap(), 100);
        assert_eq!(done - start, 20);
    }

    #[test]
    fn cold_miss_goes_through_l2_and_dram() {
        let mut ms = sys();
        let issue = ms.access(0, 0x4_0000, FillOrigin::Demand, AccessKind::Node);
        assert!(matches!(issue, Issue::Pending(_)));
        let done = run_until_complete(&mut ms, 0, issue.request_id().unwrap(), 5_000);
        // Must include L1 + L2 + DRAM latency: strictly more than L1+L2.
        assert!(done > 180, "completed suspiciously fast: {done}");
        assert_eq!(ms.stats().dram_to_l2_lines, 1);
        assert!(ms.stats().mean_latency(AccessKind::Node) > 180.0);
    }

    #[test]
    fn second_sm_hits_in_l2_after_first_fills_it() {
        let mut ms = sys();
        let a = ms.access(0, 0x8_0000, FillOrigin::Demand, AccessKind::Node);
        run_until_complete(&mut ms, 0, a.request_id().unwrap(), 5_000);
        let dram_before = ms.stats().dram_to_l2_lines;
        let b = ms.access(1, 0x8_0000, FillOrigin::Demand, AccessKind::Node);
        run_until_complete(&mut ms, 1, b.request_id().unwrap(), 5_000);
        // No extra DRAM traffic: the L2 served SM 1.
        assert_eq!(ms.stats().dram_to_l2_lines, dram_before);
    }

    #[test]
    fn same_line_requests_merge_in_l1_mshr() {
        let mut ms = sys();
        let a = ms.access(0, 0x10_0000, FillOrigin::Demand, AccessKind::Node);
        let b = ms.access(0, 0x10_0020, FillOrigin::Demand, AccessKind::Node); // same 64B line
        assert!(matches!(a, Issue::Pending(_)));
        assert!(matches!(b, Issue::Pending(_)));
        let ra = a.request_id().unwrap();
        let rb = b.request_id().unwrap();
        let mut got = Vec::new();
        for _ in 0..5_000 {
            ms.tick();
            got.extend(ms.drain_completed(0));
            if got.len() == 2 {
                break;
            }
        }
        assert!(got.contains(&ra) && got.contains(&rb));
        assert_eq!(ms.stats().dram_to_l2_lines, 1);
        assert_eq!(ms.l1_stats(0).demand_pending_hits, 1);
    }

    #[test]
    fn prefetch_then_demand_is_timely_hit() {
        let mut ms = sys();
        let p = ms.access(0, 0x20_0000, FillOrigin::Prefetch, AccessKind::Prefetch);
        let rp = p.request_id().unwrap();
        run_until_complete(&mut ms, 0, rp, 5_000);
        let d = ms.access(0, 0x20_0000, FillOrigin::Demand, AccessKind::Node);
        assert!(matches!(d, Issue::Hit(_)));
        assert_eq!(ms.l1_stats(0).demand_hits_on_prefetch, 1);
        let eff = ms.finalize_prefetch_effect();
        assert_eq!(eff.timely, 1);
        assert_eq!(eff.unused, 0);
    }

    #[test]
    fn duplicate_prefetch_is_dropped() {
        let mut ms = sys();
        let p1 = ms.access(0, 0x30_0000, FillOrigin::Prefetch, AccessKind::Prefetch);
        assert!(matches!(p1, Issue::Pending(_)));
        let p2 = ms.access(0, 0x30_0000, FillOrigin::Prefetch, AccessKind::Prefetch);
        assert_eq!(p2, Issue::PrefetchDropped);
    }

    #[test]
    fn mshr_exhaustion_returns_retry() {
        let mut cfg = MemConfig::paper_default();
        cfg.l1_mshrs = 2;
        let mut ms = MemorySystem::new(cfg, 1);
        assert!(ms
            .access(0, 0x0, FillOrigin::Demand, AccessKind::Node)
            .request_id()
            .is_some());
        assert!(ms
            .access(0, 0x40, FillOrigin::Demand, AccessKind::Node)
            .request_id()
            .is_some());
        assert_eq!(
            ms.access(0, 0x80, FillOrigin::Demand, AccessKind::Node),
            Issue::Retry
        );
    }

    #[test]
    fn busy_goes_false_after_drain() {
        let mut ms = sys();
        let a = ms.access(0, 0x123_4560, FillOrigin::Demand, AccessKind::Triangle);
        assert!(ms.busy());
        run_until_complete(&mut ms, 0, a.request_id().unwrap(), 5_000);
        // A few extra ticks to let bookkeeping settle.
        for _ in 0..4 {
            ms.tick();
        }
        assert!(!ms.busy());
    }

    #[test]
    fn l2_prefetch_installs_into_l2_only() {
        let mut ms = sys();
        let issue = ms.prefetch_l2(0x77_0000);
        assert!(matches!(issue, Issue::Pending(_)));
        for _ in 0..3_000 {
            ms.tick();
        }
        // The line now hits in L2 (the next L1 miss is served without
        // DRAM), but the L1 itself was never filled.
        let dram_before = ms.stats().dram_to_l2_lines;
        assert_eq!(dram_before, 1);
        let d = ms.access(0, 0x77_0000, FillOrigin::Demand, AccessKind::Node);
        assert!(matches!(d, Issue::Pending(_)), "L1 must miss");
        let req = d.request_id().unwrap();
        run_until_complete(&mut ms, 0, req, 2_000);
        assert_eq!(ms.stats().dram_to_l2_lines, dram_before, "L2 must serve it");
    }

    #[test]
    fn duplicate_l2_prefetch_is_dropped() {
        let mut ms = sys();
        assert!(matches!(ms.prefetch_l2(0x88_0000), Issue::Pending(_)));
        for _ in 0..3_000 {
            ms.tick();
        }
        assert_eq!(ms.prefetch_l2(0x88_0000), Issue::PrefetchDropped);
    }

    #[test]
    fn l2_prefetch_effect_classifies_timely() {
        let mut ms = sys();
        ms.prefetch_l2(0x99_0000);
        for _ in 0..3_000 {
            ms.tick();
        }
        let d = ms.access(0, 0x99_0000, FillOrigin::Demand, AccessKind::Node);
        run_until_complete(&mut ms, 0, d.request_id().unwrap(), 2_000);
        let eff = ms.finalize_l2_prefetch_effect();
        assert_eq!(eff.timely, 1);
    }

    #[test]
    fn l2_partitions_serve_in_parallel() {
        // Two misses on different partitions complete in the same window;
        // with one partition port each, two misses on the SAME partition
        // still both complete (queued), just not dropped.
        let mut ms = sys();
        let a = ms.access(0, 0x40_0000, FillOrigin::Demand, AccessKind::Node); // partition 0
        let b = ms.access(0, 0x40_0100, FillOrigin::Demand, AccessKind::Node); // partition 1
        let c = ms.access(1, 0x41_0000, FillOrigin::Demand, AccessKind::Node); // partition 0
        let mut want: Vec<_> = [a, b, c].iter().filter_map(|i| i.request_id()).collect();
        assert_eq!(want.len(), 3);
        for _ in 0..5_000 {
            ms.tick();
            for sm in 0..2 {
                for done in ms.drain_completed(sm) {
                    if let Some(pos) = want.iter().position(|&r| r == done) {
                        want.swap_remove(pos);
                    }
                }
            }
            if want.is_empty() {
                break;
            }
        }
        assert!(want.is_empty(), "requests stuck: {want:?}");
    }

    #[test]
    fn latency_histogram_mean_and_percentiles() {
        let mut h = LatencyHistogram::default();
        for lat in [10u64, 20, 30, 40, 5000] {
            h.record(lat);
        }
        assert_eq!(h.count(), 5);
        assert!((h.mean() - 1020.0).abs() < 1e-9);
        // 4 of 5 samples are in the first bin (0..64): p50/p80 -> 64.
        assert_eq!(h.percentile(50.0), 64.0);
        assert_eq!(h.percentile(80.0), 64.0);
        // The overflow sample dominates the tail.
        assert!(h.percentile(99.0) >= 4096.0);
    }

    #[test]
    fn empty_histogram_is_zero() {
        let h = LatencyHistogram::default();
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.percentile(99.0), 0.0);
    }

    #[test]
    fn out_of_range_percentile_clamps_instead_of_panicking() {
        let mut h = LatencyHistogram::default();
        for lat in [10u64, 20, 30, 5000] {
            h.record(lat);
        }
        assert_eq!(h.percentile(101.0), h.percentile(100.0));
        assert_eq!(h.percentile(1e9), h.percentile(100.0));
        assert_eq!(h.percentile(-5.0), h.percentile(0.0));
        // Empty histograms answer 0.0 for any p, in or out of range.
        let empty = LatencyHistogram::default();
        assert_eq!(empty.percentile(250.0), 0.0);
        assert_eq!(empty.percentile(-1.0), 0.0);
    }

    #[test]
    fn system_exposes_node_latency_histogram() {
        let mut ms = sys();
        let a = ms.access(0, 0xabc_0000, FillOrigin::Demand, AccessKind::Node);
        run_until_complete(&mut ms, 0, a.request_id().unwrap(), 5_000);
        let hist = ms.stats().latency_histogram(AccessKind::Node).unwrap();
        assert_eq!(hist.count(), 1);
        assert!(hist.percentile(100.0) >= hist.mean());
    }

    #[test]
    fn mem_cycle_conversion_uses_clock_ratio() {
        let ms = sys();
        // 3500/1365 ≈ 2.564 memory cycles per core cycle.
        assert_eq!(ms.mem_cycles(1365), 3500);
        assert_eq!(ms.mem_cycles(0), 0);
    }

    #[test]
    fn latency_stats_track_kinds_separately() {
        let mut ms = sys();
        let a = ms.access(0, 0x50_0000, FillOrigin::Demand, AccessKind::Node);
        run_until_complete(&mut ms, 0, a.request_id().unwrap(), 5_000);
        assert_eq!(ms.stats().completed(AccessKind::Node), 1);
        assert_eq!(ms.stats().completed(AccessKind::Triangle), 0);
    }

    #[test]
    fn audit_balances_after_mixed_traffic() {
        let mut ms = sys();
        let reqs: Vec<RequestId> = (0..6u64)
            .map(|i| {
                ms.access(
                    (i % 2) as usize,
                    0x90_0000 + i * 4096,
                    FillOrigin::Demand,
                    AccessKind::Node,
                )
                .request_id()
                .unwrap()
            })
            .collect();
        ms.prefetch_l2(0xB0_0000);
        for _ in 0..5_000 {
            ms.tick();
            ms.drain_completed(0);
            ms.drain_completed(1);
        }
        let audit = ms.audit();
        assert!(audit.is_clean(), "audit not clean: {audit:?}");
        assert_eq!(audit.issued, reqs.len() as u64 + 1);
        assert_eq!(audit.outstanding, 0);
        assert_eq!(audit.double_completions, 0);
    }

    #[test]
    fn latency_faults_slow_but_complete_everything() {
        let addr = |i: u64| 0xC0_0000 + i * 4096;
        let run = |fault: Option<FaultInjection>| -> (u64, AuditReport) {
            let mut cfg = MemConfig::paper_default();
            cfg.fault_injection = fault;
            let mut ms = MemorySystem::new(cfg, 1);
            let mut want: Vec<RequestId> = (0..16u64)
                .map(|i| {
                    ms.access(0, addr(i), FillOrigin::Demand, AccessKind::Node)
                        .request_id()
                        .unwrap()
                })
                .collect();
            let mut last_done = 0;
            for _ in 0..50_000 {
                ms.tick();
                for done in ms.drain_completed(0) {
                    if let Some(pos) = want.iter().position(|&r| r == done) {
                        want.swap_remove(pos);
                    }
                    last_done = ms.cycle();
                }
                if want.is_empty() {
                    break;
                }
            }
            assert!(want.is_empty(), "requests stuck under faults: {want:?}");
            (last_done, ms.audit())
        };
        let (clean_done, clean_audit) = run(None);
        let (faulty_done, faulty_audit) = run(Some(FaultInjection::latency_storm(7)));
        assert!(clean_audit.is_clean());
        // Latency faults perturb timing only: every request still
        // completes exactly once, just later.
        assert!(faulty_audit.is_clean());
        assert!(
            faulty_done > clean_done,
            "storm did not slow the run: {faulty_done} vs {clean_done}"
        );
        // Same seed, same schedule: faulty runs are reproducible.
        let (again_done, _) = run(Some(FaultInjection::latency_storm(7)));
        assert_eq!(faulty_done, again_done);
    }

    #[test]
    fn dropped_dram_response_wedges_its_waiter() {
        let mut cfg = MemConfig::paper_default();
        cfg.fault_injection = Some(FaultInjection::drop_nth_dram_send(1, 0));
        let mut ms = MemorySystem::new(cfg, 1);
        let req = ms
            .access(0, 0xD0_0000, FillOrigin::Demand, AccessKind::Node)
            .request_id()
            .unwrap();
        for _ in 0..20_000 {
            ms.tick();
            assert!(
                !ms.drain_completed(0).contains(&req),
                "dropped response must never complete"
            );
        }
        let audit = ms.audit();
        assert_eq!(audit.dropped_responses, 1);
        assert_eq!(audit.outstanding, 1);
        assert!(!audit.is_clean());
        assert_eq!(ms.outstanding_request_ids(), vec![req]);
        assert!(ms.busy(), "the wedged request keeps the system busy");
    }

    #[test]
    fn introspection_reports_queue_shapes() {
        let mut ms = sys();
        ms.access(0, 0xE0_0000, FillOrigin::Demand, AccessKind::Node);
        ms.access(1, 0xE1_0000, FillOrigin::Demand, AccessKind::Triangle);
        assert_eq!(ms.outstanding_requests(), 2);
        assert_eq!(ms.l1_waiter_counts(), vec![1, 1]);
        assert_eq!(ms.l2_queue_depth(), 0, "L2 hop has not fired yet");
        for _ in 0..5_000 {
            ms.tick();
            ms.drain_completed(0);
            ms.drain_completed(1);
        }
        assert_eq!(ms.outstanding_requests(), 0);
        assert_eq!(ms.l1_waiter_counts(), vec![0, 0]);
    }

    fn encoded(ms: &MemorySystem) -> Vec<u8> {
        let mut w = ByteWriter::new();
        ms.encode_state(&mut w);
        w.into_bytes()
    }

    #[test]
    fn state_round_trips_and_continues_identically() {
        let mut cfg = MemConfig::paper_default();
        cfg.fault_injection = Some(FaultInjection::latency_storm(11));
        let mut ms = MemorySystem::new(cfg, 2);
        // Put traffic everywhere: L1 pending, L2 queues, DRAM in flight,
        // an L2 prefetch, completed stats.
        for i in 0..12u64 {
            ms.access(
                (i % 2) as usize,
                0x50_0000 + i * 4096,
                FillOrigin::Demand,
                AccessKind::Node,
            );
        }
        ms.prefetch_l2(0x90_0000);
        for _ in 0..150 {
            ms.tick();
        }

        let bytes = encoded(&ms);
        let mut r = ByteReader::new(&bytes);
        let mut back =
            MemorySystem::decode_state(&mut r, cfg, 2).expect("own encoding must decode");
        r.expect_end().unwrap();

        // Canonical encoding: the decoded system re-encodes to the same
        // bytes (the state-digest property).
        assert_eq!(encoded(&back), bytes);

        // And it *behaves* identically: tick both in lockstep, issuing
        // the same new traffic, and the states stay byte-identical.
        for i in 0..4u64 {
            let a = ms.access(0, 0x70_0000 + i * 4096, FillOrigin::Demand, AccessKind::Triangle);
            let b = back.access(0, 0x70_0000 + i * 4096, FillOrigin::Demand, AccessKind::Triangle);
            assert_eq!(a, b);
        }
        for _ in 0..2_000 {
            ms.tick();
            back.tick();
            assert_eq!(ms.drain_completed(0), back.drain_completed(0));
            assert_eq!(ms.drain_completed(1), back.drain_completed(1));
        }
        assert_eq!(encoded(&back), encoded(&ms));
        assert_eq!(back.audit(), ms.audit());
    }

    #[test]
    fn truncated_state_decodes_to_typed_errors() {
        let ms = sys();
        let bytes = encoded(&ms);
        for cut in [0, 1, 8, bytes.len() / 2, bytes.len() - 1] {
            let mut r = ByteReader::new(&bytes[..cut]);
            match MemorySystem::decode_state(&mut r, MemConfig::paper_default(), 2) {
                Err(_) => {}
                Ok(_) => panic!("truncation at {cut} bytes must not decode"),
            }
        }
    }

    #[test]
    fn idle_skip_reaches_the_same_state_as_single_stepping() {
        // Two systems, same traffic. One ticks every cycle; the other
        // fast-forwards through provably idle stretches. Their encoded
        // states must stay byte-identical at every completion.
        let mut slow = sys();
        let mut fast = sys();
        for ms in [&mut slow, &mut fast] {
            ms.access(0, 0xF0_0000, FillOrigin::Demand, AccessKind::Node);
            ms.access(1, 0xF1_0000, FillOrigin::Demand, AccessKind::Triangle);
        }
        for _ in 0..3_000 {
            slow.tick();
            slow.drain_completed(0);
            slow.drain_completed(1);
        }
        while fast.busy() {
            if fast.can_skip_idle() {
                if let Some(t) = fast.next_event_cycle() {
                    if t > fast.cycle() + 1 {
                        fast.skip_idle_to(t - 1);
                    }
                }
            }
            fast.tick();
            fast.drain_completed(0);
            fast.drain_completed(1);
        }
        // Align the clocks (the slow run overshot) and compare.
        assert!(fast.cycle() <= slow.cycle());
        while fast.cycle() < slow.cycle() {
            fast.tick();
        }
        assert_eq!(encoded(&fast), encoded(&slow));
        assert!(fast.audit().is_clean());
    }

    #[test]
    fn next_event_cycle_sees_dram_completions() {
        let mut ms = sys();
        ms.access(0, 0xF5_0000, FillOrigin::Demand, AccessKind::Node);
        // Run until the only remaining work is the in-flight DRAM burst.
        for _ in 0..1_000 {
            ms.tick();
            if ms.dram().in_flight() > 0 && ms.next_event_cycle().is_some() {
                break;
            }
        }
        assert!(ms.dram().in_flight() > 0, "request never reached DRAM");
        let t = ms.next_event_cycle().expect("DRAM completion pending");
        // The conversion must be exact: the predicted core cycle reaches
        // the completion's memory time, the one before it does not.
        let mem_t = ms.dram().next_completion().unwrap();
        assert!(ms.mem_cycles(t) >= mem_t);
        assert!(t == 0 || ms.mem_cycles(t - 1) < mem_t);
    }

    #[test]
    fn drain_completed_into_reuses_the_buffer() {
        let mut ms = sys();
        let req = ms
            .access(0, 0xF7_0000, FillOrigin::Demand, AccessKind::Node)
            .request_id()
            .unwrap();
        let mut buf: Vec<RequestId> = Vec::with_capacity(8);
        let cap = buf.capacity();
        let mut seen = false;
        for _ in 0..5_000 {
            ms.tick();
            ms.drain_completed_into(0, &mut buf);
            if buf.contains(&req) {
                seen = true;
                break;
            }
        }
        assert!(seen, "request never completed");
        assert!(buf.capacity() >= cap);
        ms.drain_completed_into(0, &mut buf);
        assert!(buf.is_empty(), "second drain must be empty");
    }

    #[test]
    fn dram_utilization_nonzero_after_misses() {
        let mut ms = sys();
        for i in 0..8u64 {
            ms.access(
                0,
                0x60_0000 + i * 4096,
                FillOrigin::Demand,
                AccessKind::Node,
            );
        }
        for _ in 0..3_000 {
            ms.tick();
        }
        assert!(ms.dram_utilization() > 0.0);
    }
}
