//! Multi-channel DRAM model with address-interleaved partitions.
//!
//! The paper's configuration has 4 DRAM chips with a 256-byte partition
//! stride; Fig. 15 shows that treelet-packed layouts whose roots are 512
//! bytes apart overload channels 0 and 2. This model reproduces that
//! effect: the channel of an access is `(addr / stride) % channels`, each
//! channel's data bus serializes line bursts, and per-channel traffic
//! counters expose the imbalance.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::codec::{ByteReader, ByteWriter, DecodeError};

/// DRAM timing and topology parameters (in *memory-clock* cycles).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DramConfig {
    /// Number of channels (the paper's 4 DRAM chips).
    pub channels: usize,
    /// Address partition stride in bytes (the paper's 256 B).
    pub partition_stride: u64,
    /// Fixed access latency per request (row activate + CAS), in memory
    /// cycles.
    pub service_latency: u64,
    /// Data-bus cycles one line transfer occupies.
    pub burst_cycles: u64,
}

impl DramConfig {
    /// The paper's configuration: 4 channels, 256-byte stride, and timing
    /// representative of GDDR-class memory.
    pub fn paper_default() -> Self {
        DramConfig {
            channels: 4,
            partition_stride: 256,
            service_latency: 280,
            burst_cycles: 2,
        }
    }
}

impl Default for DramConfig {
    fn default() -> Self {
        DramConfig::paper_default()
    }
}

#[derive(Debug, Default, Clone, Copy)]
struct Channel {
    bus_free_at: u64,
    busy_cycles: u64,
    accesses: u64,
}

/// The DRAM device: accepts line requests and completes them after
/// queueing + service delay. All times are memory-clock cycles; the
/// memory system converts to and from core cycles.
///
/// # Examples
///
/// ```
/// use rt_gpu_sim::{Dram, DramConfig};
///
/// let mut dram = Dram::new(DramConfig::paper_default());
/// dram.enqueue(7, 0x1000, 0);
/// let done = dram.drain_completed(10_000);
/// assert_eq!(done, vec![7]);
/// ```
#[derive(Debug)]
pub struct Dram {
    config: DramConfig,
    channels: Vec<Channel>,
    completions: BinaryHeap<Reverse<(u64, u64)>>,
}

impl Dram {
    /// Creates a DRAM device.
    ///
    /// # Panics
    ///
    /// Panics if the configuration has zero channels, stride, or burst.
    pub fn new(config: DramConfig) -> Dram {
        assert!(config.channels > 0, "DRAM needs at least one channel");
        assert!(
            config.partition_stride > 0,
            "partition stride must be nonzero"
        );
        assert!(
            config.burst_cycles > 0,
            "burst must take at least one cycle"
        );
        Dram {
            channels: vec![Channel::default(); config.channels],
            config,
            completions: BinaryHeap::new(),
        }
    }

    /// Channel index servicing `addr`.
    pub fn channel_of(&self, addr: u64) -> usize {
        ((addr / self.config.partition_stride) % self.config.channels as u64) as usize
    }

    /// Enqueues line request `id` for `addr` at memory-cycle `now`.
    /// The request completes after queueing behind earlier bursts on its
    /// channel plus the fixed service latency.
    pub fn enqueue(&mut self, id: u64, addr: u64, now: u64) {
        let ch = self.channel_of(addr);
        let channel = &mut self.channels[ch];
        let start = channel.bus_free_at.max(now);
        channel.bus_free_at = start + self.config.burst_cycles;
        channel.busy_cycles += self.config.burst_cycles;
        channel.accesses += 1;
        let done = start + self.config.service_latency;
        self.completions.push(Reverse((done, id)));
    }

    /// Returns the ids of all requests completed by memory-cycle `now`,
    /// in completion order.
    pub fn drain_completed(&mut self, now: u64) -> Vec<u64> {
        let mut done = Vec::new();
        while let Some(&Reverse((t, id))) = self.completions.peek() {
            if t > now {
                break;
            }
            self.completions.pop();
            done.push(id);
        }
        done
    }

    /// Number of requests still in flight.
    pub fn in_flight(&self) -> usize {
        self.completions.len()
    }

    /// Memory cycle at which the earliest in-flight request completes,
    /// or `None` when nothing is in flight.
    pub fn next_completion(&self) -> Option<u64> {
        self.completions.peek().map(|&Reverse((t, _))| t)
    }

    /// Per-channel access counts (Fig. 15 load-balance evidence).
    pub fn channel_accesses(&self) -> Vec<u64> {
        self.channels.iter().map(|c| c.accesses).collect()
    }

    /// Per-channel in-flight request counts.
    ///
    /// Completion ids are line addresses (see `encode`), so each pending
    /// completion maps back to the channel that is servicing it.
    pub fn channel_in_flight(&self) -> Vec<usize> {
        let mut per = vec![0usize; self.config.channels];
        for &Reverse((_, id)) in self.completions.iter() {
            per[self.channel_of(id)] += 1;
        }
        per
    }

    /// Mean data-bus utilization across channels over `elapsed` memory
    /// cycles (Fig. 1a's DRAM utilization metric).
    ///
    /// # Panics
    ///
    /// Panics if `elapsed` is zero.
    pub fn utilization(&self, elapsed: u64) -> f64 {
        assert!(elapsed > 0, "cannot compute utilization over zero cycles");
        let busy: u64 = self.channels.iter().map(|c| c.busy_cycles).sum();
        busy as f64 / (elapsed as f64 * self.channels.len() as f64)
    }

    /// Total serviced accesses.
    pub fn total_accesses(&self) -> u64 {
        self.channels.iter().map(|c| c.accesses).sum()
    }

    /// Serializes the DRAM state (channels verbatim, completion heap as a
    /// sorted list — completion ids are line addresses, so equal entries
    /// are indistinguishable and pop order is value-determined).
    pub(crate) fn encode_state(&self, w: &mut ByteWriter) {
        w.put_usize(self.config.channels);
        w.put_u64(self.config.partition_stride);
        w.put_u64(self.config.service_latency);
        w.put_u64(self.config.burst_cycles);
        w.put_len(self.channels.len());
        for ch in &self.channels {
            w.put_u64(ch.bus_free_at);
            w.put_u64(ch.busy_cycles);
            w.put_u64(ch.accesses);
        }
        let mut completions: Vec<(u64, u64)> =
            self.completions.iter().map(|Reverse(p)| *p).collect();
        completions.sort_unstable();
        w.put_len(completions.len());
        for (t, id) in completions {
            w.put_u64(t);
            w.put_u64(id);
        }
    }

    /// Rebuilds a DRAM device from bytes produced by
    /// [`Dram::encode_state`].
    pub(crate) fn decode_state(r: &mut ByteReader<'_>) -> Result<Dram, DecodeError> {
        let channels = r.take_usize()?;
        let partition_stride = r.take_u64()?;
        let service_latency = r.take_u64()?;
        let burst_cycles = r.take_u64()?;
        if channels == 0 || partition_stride == 0 || burst_cycles == 0 {
            return Err(DecodeError::malformed("DRAM shape fields must be nonzero"));
        }
        let config = DramConfig {
            channels,
            partition_stride,
            service_latency,
            burst_cycles,
        };
        let n = r.take_len(24)?;
        if n != channels {
            return Err(DecodeError::malformed(format!(
                "channel state count {n} does not match {channels} channels"
            )));
        }
        let mut chans = Vec::with_capacity(n);
        for _ in 0..n {
            chans.push(Channel {
                bus_free_at: r.take_u64()?,
                busy_cycles: r.take_u64()?,
                accesses: r.take_u64()?,
            });
        }
        let n = r.take_len(16)?;
        let mut completions = BinaryHeap::with_capacity(n);
        for _ in 0..n {
            let t = r.take_u64()?;
            let id = r.take_u64()?;
            completions.push(Reverse((t, id)));
        }
        Ok(Dram {
            config,
            channels: chans,
            completions,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dram() -> Dram {
        Dram::new(DramConfig::paper_default())
    }

    #[test]
    fn channel_mapping_follows_partition_stride() {
        let d = dram();
        assert_eq!(d.channel_of(0), 0);
        assert_eq!(d.channel_of(256), 1);
        assert_eq!(d.channel_of(512), 2);
        assert_eq!(d.channel_of(768), 3);
        assert_eq!(d.channel_of(1024), 0);
        assert_eq!(d.channel_of(255), 0);
    }

    #[test]
    fn fixed_latency_when_uncontended() {
        let mut d = dram();
        d.enqueue(1, 0x0, 100);
        assert!(d.drain_completed(100 + 279).is_empty());
        assert_eq!(d.drain_completed(100 + 280), vec![1]);
    }

    #[test]
    fn same_channel_requests_serialize_on_the_bus() {
        let mut d = dram();
        d.enqueue(1, 0x0, 0);
        d.enqueue(2, 0x400, 0); // 1024 -> also channel 0
                                // First completes at 280, second starts its burst at 2 -> 2 + 280.
        assert_eq!(d.drain_completed(280), vec![1]);
        assert_eq!(d.drain_completed(282), vec![2]);
    }

    #[test]
    fn different_channels_proceed_in_parallel() {
        let mut d = dram();
        d.enqueue(1, 0x000, 0); // ch 0
        d.enqueue(2, 0x100, 0); // ch 1
        let done = d.drain_completed(280);
        assert_eq!(done.len(), 2);
    }

    #[test]
    fn stride_512_addresses_load_only_even_channels() {
        // The Fig. 15 effect: treelet roots 512 B apart hit channels 0 and
        // 2 only.
        let mut d = dram();
        for i in 0..64u64 {
            d.enqueue(i, i * 512, 0);
        }
        let per = d.channel_accesses();
        assert_eq!(per[1], 0);
        assert_eq!(per[3], 0);
        assert_eq!(per[0] + per[2], 64);
    }

    #[test]
    fn stride_768_addresses_balance_all_channels() {
        // Adding the 256 B inter-treelet stride (roots 768 B apart)
        // spreads accesses across all four channels.
        let mut d = dram();
        for i in 0..64u64 {
            d.enqueue(i, i * 768, 0);
        }
        let per = d.channel_accesses();
        assert!(per.iter().all(|&c| c > 0), "channels: {per:?}");
    }

    #[test]
    fn utilization_counts_bus_busy_cycles() {
        let mut d = dram();
        for i in 0..10u64 {
            d.enqueue(i, i * 64, 0);
        }
        // 10 bursts × 2 cycles spread over 4 channels in 100 cycles.
        let u = d.utilization(100);
        assert!((u - 20.0 / 400.0).abs() < 1e-9);
    }

    #[test]
    fn in_flight_tracks_outstanding() {
        let mut d = dram();
        d.enqueue(1, 0, 0);
        d.enqueue(2, 64, 0);
        assert_eq!(d.in_flight(), 2);
        d.drain_completed(1_000);
        assert_eq!(d.in_flight(), 0);
    }

    #[test]
    fn channel_in_flight_buckets_by_servicing_channel() {
        let mut d = dram();
        d.enqueue(0, 0, 0); // ch 0
        d.enqueue(256, 256, 0); // ch 1
        d.enqueue(320, 320, 0); // ch 1
        assert_eq!(d.channel_in_flight(), vec![1, 2, 0, 0]);
        assert_eq!(d.channel_in_flight().iter().sum::<usize>(), d.in_flight());
        d.drain_completed(10_000);
        assert_eq!(d.channel_in_flight(), vec![0, 0, 0, 0]);
    }

    #[test]
    fn state_round_trips_through_the_codec() {
        let mut d = dram();
        for i in 0..10u64 {
            d.enqueue(i, i * 192, i);
        }
        d.drain_completed(300);
        let mut w = ByteWriter::new();
        d.encode_state(&mut w);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        let back = Dram::decode_state(&mut r).expect("own encoding must decode");
        r.expect_end().unwrap();
        let mut w2 = ByteWriter::new();
        back.encode_state(&mut w2);
        assert_eq!(w2.into_bytes(), bytes);
        assert_eq!(back.in_flight(), d.in_flight());
        assert_eq!(back.channel_accesses(), d.channel_accesses());
    }
}
