//! Property-based tests for the cache and DRAM models.

use rt_gpu_sim::{
    AccessKind, Cache, Dram, DramConfig, FillOrigin, MemConfig, MemorySystem, Organization,
    ProbeOutcome,
};
use rt_rng::prop::forall;
use rt_rng::{Rng, SmallRng};

/// A random access script: (line index, is_prefetch).
fn script(rng: &mut SmallRng) -> Vec<(u8, bool)> {
    let n = rng.gen_range(1..200usize);
    (0..n)
        .map(|_| (rng.gen_range(0..32u32) as u8, rng.gen_bool(0.5)))
        .collect()
}

#[test]
fn cache_occupancy_never_exceeds_capacity() {
    forall("cache_occupancy_never_exceeds_capacity", 128, |rng| {
        let ops = script(rng);
        let mut cache = Cache::new(8, Organization::FullyAssociative, 64, 64);
        for (i, (line, prefetch)) in ops.iter().enumerate() {
            let addr = *line as u64 * 64;
            let origin = if *prefetch { FillOrigin::Prefetch } else { FillOrigin::Demand };
            if cache.probe(addr, origin, i as u64) == ProbeOutcome::Miss {
                cache.fill(addr, i as u64);
            }
            assert!(cache.resident_lines() <= 8);
        }
    });
}

#[test]
fn fill_then_probe_always_hits() {
    forall("fill_then_probe_always_hits", 128, |rng| {
        let ops = script(rng);
        let mut cache = Cache::new(16, Organization::SetAssociative { sets: 4 }, 64, 64);
        for (i, (line, _)) in ops.iter().enumerate() {
            let addr = *line as u64 * 64;
            if cache.probe(addr, FillOrigin::Demand, i as u64) == ProbeOutcome::Miss {
                cache.fill(addr, i as u64);
                let hits = matches!(
                    cache.probe(addr, FillOrigin::Demand, i as u64),
                    ProbeOutcome::Hit { .. }
                );
                assert!(hits);
            }
        }
    });
}

#[test]
fn mshr_count_is_bounded() {
    forall("mshr_count_is_bounded", 128, |rng| {
        let ops = script(rng);
        let mut cache = Cache::new(64, Organization::FullyAssociative, 4, 64);
        for (i, (line, _)) in ops.iter().enumerate() {
            let addr = *line as u64 * 64;
            let _ = cache.probe(addr, FillOrigin::Demand, i as u64);
            assert!(cache.mshrs_in_use() <= 4);
        }
    });
}

#[test]
fn effectiveness_classification_is_complete() {
    forall("effectiveness_classification_is_complete", 128, |rng| {
        // Every prefetch probe ends up in exactly one class once the run
        // is finalized: too_late (dropped) or one of the fill classes.
        let ops = script(rng);
        let mut cache = Cache::new(8, Organization::FullyAssociative, 64, 64);
        for (i, (line, prefetch)) in ops.iter().enumerate() {
            let addr = *line as u64 * 64;
            let origin = if *prefetch { FillOrigin::Prefetch } else { FillOrigin::Demand };
            if cache.probe(addr, origin, i as u64) == ProbeOutcome::Miss {
                cache.fill(addr, i as u64);
            }
        }
        let stats = cache.stats();
        let effect = cache.finalize_effect();
        // timely + late + early + unused counts distinct prefetch *fills*;
        // too_late counts dropped probes. Together they never exceed the
        // number of prefetch probes, and dropped + actually-fetched probes
        // cover them all.
        assert_eq!(effect.too_late + stats.prefetch_misses, stats.prefetch_probes);
        assert!(
            effect.timely + effect.late + effect.early + effect.unused
                <= stats.prefetch_misses + effect.early
        );
    });
}

#[test]
fn memory_system_never_loses_requests() {
    forall("memory_system_never_loses_requests", 128, |rng| {
        // Fuzz the full hierarchy with interleaved demand loads and
        // prefetches from two SMs: every accepted demand request must
        // complete, even under MSHR backpressure (Retry).
        let n = rng.gen_range(1..150usize);
        let pattern: Vec<(u64, usize, bool)> = (0..n)
            .map(|_| (rng.gen_range(0..256u64), rng.gen_range(0..2usize), rng.gen_bool(0.5)))
            .collect();
        let mut cfg = MemConfig::paper_default();
        cfg.l1_mshrs = 4; // force backpressure
        cfg.l2_mshrs = 8;
        let mut ms = MemorySystem::new(cfg, 2);
        let mut outstanding: Vec<(usize, u64)> = Vec::new();
        let mut issued = 0u64;
        let mut retries = 0u64;
        for &(block, sm, prefetch) in &pattern {
            let addr = block * 64;
            let origin = if prefetch { FillOrigin::Prefetch } else { FillOrigin::Demand };
            match ms.access(sm, addr, origin, AccessKind::Node) {
                rt_gpu_sim::Issue::Hit(req) | rt_gpu_sim::Issue::Pending(req) => {
                    if origin == FillOrigin::Demand {
                        outstanding.push((sm, req));
                        issued += 1;
                    }
                }
                rt_gpu_sim::Issue::Retry => retries += 1,
                rt_gpu_sim::Issue::PrefetchDropped => {}
            }
            ms.tick();
            for sm in 0..2 {
                for done in ms.drain_completed(sm) {
                    outstanding.retain(|&(s, r)| !(s == sm && r == done));
                }
            }
        }
        // Drain everything.
        for _ in 0..20_000 {
            if outstanding.is_empty() {
                break;
            }
            ms.tick();
            for sm in 0..2 {
                for done in ms.drain_completed(sm) {
                    outstanding.retain(|&(s, r)| !(s == sm && r == done));
                }
            }
        }
        assert!(
            outstanding.is_empty(),
            "{} of {} demand requests never completed ({} retries)",
            outstanding.len(),
            issued,
            retries
        );
    });
}

#[test]
fn dram_completion_respects_service_latency() {
    forall("dram_completion_respects_service_latency", 128, |rng| {
        let n = rng.gen_range(1..64usize);
        let addrs: Vec<u64> = (0..n).map(|_| rng.gen_range(0..4096u64)).collect();
        let config = DramConfig::paper_default();
        let mut dram = Dram::new(config);
        for (i, a) in addrs.iter().enumerate() {
            dram.enqueue(i as u64, a * 64, 0);
        }
        // Nothing can complete before the fixed service latency.
        assert!(dram.drain_completed(config.service_latency - 1).is_empty());
        // Everything completes eventually.
        let horizon = config.service_latency + addrs.len() as u64 * config.burst_cycles;
        let done = dram.drain_completed(horizon);
        assert_eq!(done.len(), addrs.len());
        assert_eq!(dram.in_flight(), 0);
    });
}

#[test]
fn dram_channel_counts_conserve_requests() {
    forall("dram_channel_counts_conserve_requests", 128, |rng| {
        let n = rng.gen_range(1..100usize);
        let addrs: Vec<u64> = (0..n).map(|_| rng.gen_range(0..100_000u64)).collect();
        let mut dram = Dram::new(DramConfig::paper_default());
        for (i, a) in addrs.iter().enumerate() {
            dram.enqueue(i as u64, *a, 0);
        }
        let per: u64 = dram.channel_accesses().iter().sum();
        assert_eq!(per, addrs.len() as u64);
        assert_eq!(dram.total_accesses(), addrs.len() as u64);
    });
}
