//! Property-based tests for the geometry primitives.

use rt_geometry::{Aabb, Ray, Triangle, Vec3};
use rt_rng::prop::forall;
use rt_rng::{Rng, SmallRng};

fn coord(rng: &mut SmallRng) -> f32 {
    rng.gen_range(-100.0f32..100.0)
}

fn vec3(rng: &mut SmallRng) -> Vec3 {
    Vec3::new(coord(rng), coord(rng), coord(rng))
}

fn nonzero_vec3(rng: &mut SmallRng) -> Vec3 {
    loop {
        let v = vec3(rng);
        if v.length_squared() > 1e-3 {
            return v;
        }
    }
}

/// A triangle rejected until non-degenerate, so hit-based properties
/// never divide by a near-zero normal.
fn nondegenerate_triangle(rng: &mut SmallRng) -> Triangle {
    loop {
        let t = Triangle::new(vec3(rng), vec3(rng), vec3(rng));
        if !t.is_degenerate() {
            return t;
        }
    }
}

#[test]
fn vec_addition_commutes() {
    forall("vec_addition_commutes", 256, |rng| {
        let (a, b) = (vec3(rng), vec3(rng));
        assert_eq!(a + b, b + a);
    });
}

#[test]
fn dot_is_symmetric() {
    forall("dot_is_symmetric", 256, |rng| {
        let (a, b) = (vec3(rng), vec3(rng));
        assert!((a.dot(b) - b.dot(a)).abs() < 1e-3);
    });
}

#[test]
fn cross_is_orthogonal() {
    forall("cross_is_orthogonal", 256, |rng| {
        let (a, b) = (nonzero_vec3(rng), nonzero_vec3(rng));
        let c = a.cross(b);
        // Orthogonality tolerance scales with the magnitudes involved.
        let scale = a.length() * b.length() * (a.length() + b.length());
        assert!(c.dot(a).abs() <= scale * 1e-4 + 1e-3);
        assert!(c.dot(b).abs() <= scale * 1e-4 + 1e-3);
    });
}

#[test]
fn normalized_has_unit_length() {
    forall("normalized_has_unit_length", 256, |rng| {
        let v = nonzero_vec3(rng);
        assert!((v.normalized().length() - 1.0).abs() < 1e-4);
    });
}

#[test]
fn min_max_bracket_lerp() {
    forall("min_max_bracket_lerp", 256, |rng| {
        let (a, b) = (vec3(rng), vec3(rng));
        let t = rng.gen_range(0.0f32..1.0);
        let l = a.lerp(b, t);
        let lo = a.min(b);
        let hi = a.max(b);
        for axis in 0..3 {
            assert!(l[axis] >= lo[axis] - 1e-3);
            assert!(l[axis] <= hi[axis] + 1e-3);
        }
    });
}

#[test]
fn aabb_union_contains_both() {
    forall("aabb_union_contains_both", 256, |rng| {
        let (a0, a1, b0, b1) = (vec3(rng), vec3(rng), vec3(rng), vec3(rng));
        let a = Aabb::new(a0.min(a1), a0.max(a1));
        let b = Aabb::new(b0.min(b1), b0.max(b1));
        let u = a.union(&b);
        assert!(u.contains_box(&a));
        assert!(u.contains_box(&b));
    });
}

#[test]
fn aabb_grow_point_contains() {
    forall("aabb_grow_point_contains", 256, |rng| {
        let (p, q) = (vec3(rng), vec3(rng));
        let mut b = Aabb::from_point(p);
        b.grow_point(q);
        assert!(b.contains_point(p));
        assert!(b.contains_point(q));
    });
}

#[test]
fn ray_from_inside_box_always_hits() {
    forall("ray_from_inside_box_always_hits", 256, |rng| {
        let (c0, c1) = (vec3(rng), vec3(rng));
        let dir = nonzero_vec3(rng);
        let t = rng.gen_range(0.05f32..0.95);
        let b = Aabb::new(c0.min(c1) - Vec3::splat(0.5), c0.max(c1) + Vec3::splat(0.5));
        // A point strictly inside the (padded) box.
        let origin = b.min.lerp(b.max, t);
        let ray = Ray::with_interval(origin, dir, 0.0, f32::INFINITY);
        assert!(b.intersect(&ray, ray.inv_direction()).is_some());
    });
}

#[test]
fn box_hit_entry_is_within_interval() {
    forall("box_hit_entry_is_within_interval", 256, |rng| {
        let (c0, c1, o) = (vec3(rng), vec3(rng), vec3(rng));
        let dir = nonzero_vec3(rng);
        let b = Aabb::new(c0.min(c1), c0.max(c1));
        let ray = Ray::new(o, dir);
        if let Some(t) = b.intersect(&ray, ray.inv_direction()) {
            assert!(t >= ray.t_min);
            assert!(t <= ray.t_max);
        }
    });
}

#[test]
fn triangle_hit_point_lies_in_plane() {
    forall("triangle_hit_point_lies_in_plane", 256, |rng| {
        let tri = nondegenerate_triangle(rng);
        let o = vec3(rng);
        let dir = nonzero_vec3(rng);
        let ray = Ray::new(o, dir);
        if let Some(t) = tri.intersect(&ray) {
            let p = ray.at(t);
            let n = tri.normal().normalized();
            let d = n.dot(p - tri.v0).abs();
            // Plane distance tolerance scales with the geometry.
            let scale = (p - tri.v0).length().max(1.0);
            assert!(d < scale * 1e-2, "off-plane by {d}");
        }
    });
}

#[test]
fn triangle_hit_inside_its_aabb() {
    forall("triangle_hit_inside_its_aabb", 256, |rng| {
        let tri = nondegenerate_triangle(rng);
        let o = vec3(rng);
        let dir = nonzero_vec3(rng);
        let ray = Ray::new(o, dir);
        if let Some(t) = tri.intersect(&ray) {
            let p = ray.at(t);
            // Padded for floating-point slack.
            let mut b = tri.aabb();
            let pad = Vec3::splat(0.05 * (1.0 + p.length()));
            b.grow_point(b.min - pad);
            b.grow_point(b.max + pad);
            assert!(b.contains_point(p));
        }
    });
}

#[test]
fn shrinking_t_max_never_creates_hits() {
    forall("shrinking_t_max_never_creates_hits", 256, |rng| {
        let tri = nondegenerate_triangle(rng);
        let o = vec3(rng);
        let dir = nonzero_vec3(rng);
        let cut = rng.gen_range(0.0f32..1.0);
        let full = Ray::new(o, dir);
        let full_hit = tri.intersect(&full);
        let mut clipped = full;
        clipped.t_max = cut * 10.0;
        if let Some(t) = tri.intersect(&clipped) {
            // A hit in the clipped interval must also exist unclipped.
            assert!(full_hit.is_some());
            assert!((full_hit.unwrap() - t).abs() < 1e-4);
        }
    });
}
