//! Property-based tests for the geometry primitives.

use proptest::prelude::*;
use rt_geometry::{Aabb, Ray, Triangle, Vec3};

fn finite_f32() -> impl Strategy<Value = f32> {
    -100.0f32..100.0
}

fn vec3() -> impl Strategy<Value = Vec3> {
    (finite_f32(), finite_f32(), finite_f32()).prop_map(|(x, y, z)| Vec3::new(x, y, z))
}

fn nonzero_vec3() -> impl Strategy<Value = Vec3> {
    vec3().prop_filter("direction must be nonzero", |v| v.length_squared() > 1e-3)
}

proptest! {
    #[test]
    fn vec_addition_commutes(a in vec3(), b in vec3()) {
        prop_assert_eq!(a + b, b + a);
    }

    #[test]
    fn dot_is_symmetric(a in vec3(), b in vec3()) {
        prop_assert!((a.dot(b) - b.dot(a)).abs() < 1e-3);
    }

    #[test]
    fn cross_is_orthogonal(a in nonzero_vec3(), b in nonzero_vec3()) {
        let c = a.cross(b);
        // Orthogonality tolerance scales with the magnitudes involved.
        let scale = a.length() * b.length() * (a.length() + b.length());
        prop_assert!(c.dot(a).abs() <= scale * 1e-4 + 1e-3);
        prop_assert!(c.dot(b).abs() <= scale * 1e-4 + 1e-3);
    }

    #[test]
    fn normalized_has_unit_length(v in nonzero_vec3()) {
        prop_assert!((v.normalized().length() - 1.0).abs() < 1e-4);
    }

    #[test]
    fn min_max_bracket_lerp(a in vec3(), b in vec3(), t in 0.0f32..1.0) {
        let l = a.lerp(b, t);
        let lo = a.min(b);
        let hi = a.max(b);
        for axis in 0..3 {
            prop_assert!(l[axis] >= lo[axis] - 1e-3);
            prop_assert!(l[axis] <= hi[axis] + 1e-3);
        }
    }

    #[test]
    fn aabb_union_contains_both(
        a0 in vec3(), a1 in vec3(), b0 in vec3(), b1 in vec3()
    ) {
        let a = Aabb::new(a0.min(a1), a0.max(a1));
        let b = Aabb::new(b0.min(b1), b0.max(b1));
        let u = a.union(&b);
        prop_assert!(u.contains_box(&a));
        prop_assert!(u.contains_box(&b));
    }

    #[test]
    fn aabb_grow_point_contains(p in vec3(), q in vec3()) {
        let mut b = Aabb::from_point(p);
        b.grow_point(q);
        prop_assert!(b.contains_point(p));
        prop_assert!(b.contains_point(q));
    }

    #[test]
    fn ray_from_inside_box_always_hits(
        c0 in vec3(), c1 in vec3(), dir in nonzero_vec3(), t in 0.05f32..0.95
    ) {
        let b = Aabb::new(c0.min(c1) - Vec3::splat(0.5), c0.max(c1) + Vec3::splat(0.5));
        // A point strictly inside the (padded) box.
        let origin = b.min.lerp(b.max, t);
        let ray = Ray::with_interval(origin, dir, 0.0, f32::INFINITY);
        prop_assert!(b.intersect(&ray, ray.inv_direction()).is_some());
    }

    #[test]
    fn box_hit_entry_is_within_interval(
        c0 in vec3(), c1 in vec3(), o in vec3(), dir in nonzero_vec3()
    ) {
        let b = Aabb::new(c0.min(c1), c0.max(c1));
        let ray = Ray::new(o, dir);
        if let Some(t) = b.intersect(&ray, ray.inv_direction()) {
            prop_assert!(t >= ray.t_min);
            prop_assert!(t <= ray.t_max);
        }
    }

    #[test]
    fn triangle_hit_point_lies_in_plane(
        v0 in vec3(), v1 in vec3(), v2 in vec3(), o in vec3(), dir in nonzero_vec3()
    ) {
        let tri = Triangle::new(v0, v1, v2);
        prop_assume!(!tri.is_degenerate());
        let ray = Ray::new(o, dir);
        if let Some(t) = tri.intersect(&ray) {
            let p = ray.at(t);
            let n = tri.normal().normalized();
            let d = n.dot(p - tri.v0).abs();
            // Plane distance tolerance scales with the geometry.
            let scale = (p - tri.v0).length().max(1.0);
            prop_assert!(d < scale * 1e-2, "off-plane by {d}");
        }
    }

    #[test]
    fn triangle_hit_inside_its_aabb(
        v0 in vec3(), v1 in vec3(), v2 in vec3(), o in vec3(), dir in nonzero_vec3()
    ) {
        let tri = Triangle::new(v0, v1, v2);
        prop_assume!(!tri.is_degenerate());
        let ray = Ray::new(o, dir);
        if let Some(t) = tri.intersect(&ray) {
            let p = ray.at(t);
            // Padded for floating-point slack.
            let mut b = tri.aabb();
            let pad = Vec3::splat(0.05 * (1.0 + p.length()));
            b.grow_point(b.min - pad);
            b.grow_point(b.max + pad);
            prop_assert!(b.contains_point(p));
        }
    }

    #[test]
    fn shrinking_t_max_never_creates_hits(
        v0 in vec3(), v1 in vec3(), v2 in vec3(), o in vec3(), dir in nonzero_vec3(),
        cut in 0.0f32..1.0
    ) {
        let tri = Triangle::new(v0, v1, v2);
        prop_assume!(!tri.is_degenerate());
        let full = Ray::new(o, dir);
        let full_hit = tri.intersect(&full);
        let mut clipped = full;
        clipped.t_max = cut * 10.0;
        if let Some(t) = tri.intersect(&clipped) {
            // A hit in the clipped interval must also exist unclipped.
            prop_assert!(full_hit.is_some());
            prop_assert!((full_hit.unwrap() - t).abs() < 1e-4);
        }
    }
}
