//! Triangle primitives and the Möller–Trumbore intersection test.

use crate::{Aabb, Ray, Vec3};
use std::fmt;

/// A triangle defined by three vertices.
///
/// Triangles are the only primitive type in this stack, matching the
/// triangle-only scenes the paper evaluates on.
///
/// # Examples
///
/// ```
/// use rt_geometry::{Ray, Triangle, Vec3};
///
/// let tri = Triangle::new(
///     Vec3::new(0.0, 0.0, 1.0),
///     Vec3::new(1.0, 0.0, 1.0),
///     Vec3::new(0.0, 1.0, 1.0),
/// );
/// let ray = Ray::new(Vec3::new(0.25, 0.25, 0.0), Vec3::Z);
/// assert_eq!(tri.intersect(&ray), Some(1.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Triangle {
    /// First vertex.
    pub v0: Vec3,
    /// Second vertex.
    pub v1: Vec3,
    /// Third vertex.
    pub v2: Vec3,
}

impl Triangle {
    /// Creates a triangle from its three vertices.
    #[inline]
    pub const fn new(v0: Vec3, v1: Vec3, v2: Vec3) -> Self {
        Triangle { v0, v1, v2 }
    }

    /// Bounding box of the triangle.
    #[inline]
    pub fn aabb(&self) -> Aabb {
        let mut b = Aabb::from_point(self.v0);
        b.grow_point(self.v1);
        b.grow_point(self.v2);
        b
    }

    /// Centroid (arithmetic mean of the vertices). Used by SAH binning.
    #[inline]
    pub fn centroid(&self) -> Vec3 {
        (self.v0 + self.v1 + self.v2) / 3.0
    }

    /// Unnormalized geometric normal `(v1-v0) × (v2-v0)`.
    #[inline]
    pub fn normal(&self) -> Vec3 {
        (self.v1 - self.v0).cross(self.v2 - self.v0)
    }

    /// Area of the triangle.
    #[inline]
    pub fn area(&self) -> f32 {
        self.normal().length() * 0.5
    }

    /// `true` if the triangle has (near-)zero area.
    #[inline]
    pub fn is_degenerate(&self) -> bool {
        self.area() < 1e-12
    }

    /// Möller–Trumbore ray-triangle intersection.
    ///
    /// Returns the hit distance `t` if the ray crosses the triangle within
    /// `[ray.t_min, ray.t_max]`, `None` otherwise. Backfacing triangles are
    /// reported too (no culling), as required for closest-hit traversal.
    pub fn intersect(&self, ray: &Ray) -> Option<f32> {
        let e1 = self.v1 - self.v0;
        let e2 = self.v2 - self.v0;
        let p = ray.direction.cross(e2);
        let det = e1.dot(p);
        // Parallel (or degenerate) — no stable intersection.
        if det.abs() < 1e-12 {
            return None;
        }
        let inv_det = 1.0 / det;
        let s = ray.origin - self.v0;
        let u = s.dot(p) * inv_det;
        if !(0.0..=1.0).contains(&u) {
            return None;
        }
        let q = s.cross(e1);
        let v = ray.direction.dot(q) * inv_det;
        if v < 0.0 || u + v > 1.0 {
            return None;
        }
        let t = e2.dot(q) * inv_det;
        if t >= ray.t_min && t <= ray.t_max {
            Some(t)
        } else {
            None
        }
    }
}

impl fmt::Display for Triangle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Triangle[{}, {}, {}]", self.v0, self.v1, self.v2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Unit right triangle in the plane z = 1.
    fn unit_tri() -> Triangle {
        Triangle::new(
            Vec3::new(0.0, 0.0, 1.0),
            Vec3::new(1.0, 0.0, 1.0),
            Vec3::new(0.0, 1.0, 1.0),
        )
    }

    #[test]
    fn aabb_encloses_vertices() {
        let t = unit_tri();
        let b = t.aabb();
        assert!(b.contains_point(t.v0));
        assert!(b.contains_point(t.v1));
        assert!(b.contains_point(t.v2));
        assert_eq!(b.min, Vec3::new(0.0, 0.0, 1.0));
        assert_eq!(b.max, Vec3::new(1.0, 1.0, 1.0));
    }

    #[test]
    fn centroid_area_normal() {
        let t = unit_tri();
        assert_eq!(t.centroid(), Vec3::new(1.0 / 3.0, 1.0 / 3.0, 1.0));
        assert_eq!(t.area(), 0.5);
        // Normal points along +Z for counter-clockwise winding.
        assert_eq!(t.normal().normalized(), Vec3::Z);
    }

    #[test]
    fn ray_hits_interior() {
        let t = unit_tri();
        let ray = Ray::new(Vec3::new(0.2, 0.2, 0.0), Vec3::Z);
        assert_eq!(t.intersect(&ray), Some(1.0));
    }

    #[test]
    fn ray_misses_outside_edges() {
        let t = unit_tri();
        // Outside the hypotenuse (u + v > 1).
        let ray = Ray::new(Vec3::new(0.8, 0.8, 0.0), Vec3::Z);
        assert_eq!(t.intersect(&ray), None);
        // Negative u.
        let ray = Ray::new(Vec3::new(-0.1, 0.5, 0.0), Vec3::Z);
        assert_eq!(t.intersect(&ray), None);
        // Negative v.
        let ray = Ray::new(Vec3::new(0.5, -0.1, 0.0), Vec3::Z);
        assert_eq!(t.intersect(&ray), None);
    }

    #[test]
    fn backface_hits_are_reported() {
        let t = unit_tri();
        // Ray from behind, hitting the backface.
        let ray = Ray::new(Vec3::new(0.2, 0.2, 2.0), -Vec3::Z);
        assert_eq!(t.intersect(&ray), Some(1.0));
    }

    #[test]
    fn parallel_ray_misses() {
        let t = unit_tri();
        let ray = Ray::new(Vec3::new(0.0, 0.0, 0.0), Vec3::X);
        assert_eq!(t.intersect(&ray), None);
    }

    #[test]
    fn hit_outside_interval_is_rejected() {
        let t = unit_tri();
        let mut ray = Ray::new(Vec3::new(0.2, 0.2, 0.0), Vec3::Z);
        ray.t_max = 0.5;
        assert_eq!(t.intersect(&ray), None);
        ray.t_max = f32::INFINITY;
        ray.t_min = 2.0;
        assert_eq!(t.intersect(&ray), None);
    }

    #[test]
    fn hit_behind_origin_is_rejected() {
        let t = unit_tri();
        let ray = Ray::new(Vec3::new(0.2, 0.2, 2.0), Vec3::Z);
        assert_eq!(t.intersect(&ray), None);
    }

    #[test]
    fn degenerate_triangle_detection() {
        let d = Triangle::new(Vec3::ZERO, Vec3::X, Vec3::X * 2.0);
        assert!(d.is_degenerate());
        assert!(!unit_tri().is_degenerate());
        // A ray through a degenerate triangle never hits.
        let ray = Ray::new(Vec3::new(0.5, 0.0, -1.0), Vec3::Z);
        assert_eq!(d.intersect(&ray), None);
    }

    #[test]
    fn edge_hit_is_inclusive() {
        let t = unit_tri();
        // Through vertex v0 exactly.
        let ray = Ray::new(Vec3::new(0.0, 0.0, 0.0), Vec3::Z);
        assert_eq!(t.intersect(&ray), Some(1.0));
    }

    #[test]
    fn display_is_nonempty() {
        assert!(unit_tri().to_string().contains("Triangle"));
    }
}
