//! Batched slab tests: one ray against up to six boxes at a time.
//!
//! The 6-wide BVH stores each internal node's child bounds together, so
//! traversal always tests one ray against *all* of a node's children —
//! a natural SIMD-shaped workload. [`WideAabb`] keeps those bounds in
//! structure-of-arrays form (`min_x[6]`, `min_y[6]`, … as in the Arches
//! `WideTreeletBVH::Node` `Data[WIDTH]` + `AABB[WIDTH]` layout) so the
//! per-lane slab test compiles to straight-line component loops the
//! auto-vectorizer can handle, instead of six pointer-chased
//! [`Aabb`](crate::Aabb) records.
//!
//! **Bit-identical contract.** [`WideAabb::intersect`] performs, per
//! lane, exactly the operations of [`Aabb::intersect`](crate::Aabb) in
//! the same order on the same `f32` values. Lane `i` of the batched
//! result equals the scalar result for child `i` — not approximately,
//! but bit for bit — so traversal order, early termination, and
//! therefore every simulator state digest are unchanged when the
//! batched kernel replaces the scalar loop. `rt-bvh`'s suite-scene
//! golden test pins this equivalence.

use crate::{Aabb, Ray, Vec3};

/// Number of lanes in the batched AABB test (the wide-BVH arity).
pub const WIDE_LANES: usize = 6;

/// Up to six axis-aligned boxes in structure-of-arrays form.
///
/// Lanes `len..WIDE_LANES` are padding and are never read by
/// [`WideAabb::intersect`]; their contents are the canonical empty box.
///
/// # Examples
///
/// ```
/// use rt_geometry::{Aabb, Ray, Vec3, WideAabb};
///
/// let near = Aabb::new(Vec3::new(1.0, -1.0, -1.0), Vec3::new(2.0, 1.0, 1.0));
/// let far = Aabb::new(Vec3::new(5.0, -1.0, -1.0), Vec3::new(6.0, 1.0, 1.0));
/// let wide = WideAabb::from_boxes(&[near, far]);
/// let ray = Ray::new(Vec3::ZERO, Vec3::X);
/// let hits = wide.intersect(&ray, ray.inv_direction());
/// assert_eq!(hits.entry(0), near.intersect(&ray, ray.inv_direction()));
/// assert_eq!(hits.entry(1), far.intersect(&ray, ray.inv_direction()));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WideAabb {
    /// Minimum X corner per lane.
    pub min_x: [f32; WIDE_LANES],
    /// Minimum Y corner per lane.
    pub min_y: [f32; WIDE_LANES],
    /// Minimum Z corner per lane.
    pub min_z: [f32; WIDE_LANES],
    /// Maximum X corner per lane.
    pub max_x: [f32; WIDE_LANES],
    /// Maximum Y corner per lane.
    pub max_y: [f32; WIDE_LANES],
    /// Maximum Z corner per lane.
    pub max_z: [f32; WIDE_LANES],
    /// Number of live lanes (`0..=WIDE_LANES`).
    pub len: u8,
}

/// Result of a batched slab test: a hit mask plus per-lane entry
/// distances.
///
/// Only lanes whose mask bit is set carry a meaningful entry distance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WideHits {
    /// Bit `i` is set when lane `i`'s box is intersected within the
    /// ray's `[t_min, t_max]` interval.
    pub mask: u8,
    /// Per-lane entry distances; only meaningful where `mask` is set.
    pub entries: [f32; WIDE_LANES],
}

impl WideHits {
    /// The scalar-equivalent result for lane `i`: the entry distance if
    /// the lane's box was hit, `None` otherwise — exactly what
    /// [`Aabb::intersect`](crate::Aabb::intersect) returns for that box.
    #[inline]
    pub fn entry(&self, i: usize) -> Option<f32> {
        if self.mask & (1 << i) != 0 {
            Some(self.entries[i])
        } else {
            None
        }
    }

    /// `true` if no lane was hit.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.mask == 0
    }
}

impl WideAabb {
    /// A batch with no live lanes (padding lanes hold empty boxes).
    #[inline]
    pub fn empty() -> WideAabb {
        WideAabb {
            min_x: [f32::INFINITY; WIDE_LANES],
            min_y: [f32::INFINITY; WIDE_LANES],
            min_z: [f32::INFINITY; WIDE_LANES],
            max_x: [f32::NEG_INFINITY; WIDE_LANES],
            max_y: [f32::NEG_INFINITY; WIDE_LANES],
            max_z: [f32::NEG_INFINITY; WIDE_LANES],
            len: 0,
        }
    }

    /// Packs `boxes` into lanes `0..boxes.len()`.
    ///
    /// # Panics
    ///
    /// Panics if `boxes` has more than [`WIDE_LANES`] entries.
    pub fn from_boxes(boxes: &[Aabb]) -> WideAabb {
        assert!(boxes.len() <= WIDE_LANES, "too many boxes for one batch");
        let mut wide = WideAabb::empty();
        for (i, b) in boxes.iter().enumerate() {
            wide.set(i, b);
        }
        wide.len = boxes.len() as u8;
        wide
    }

    /// Stores `aabb` in lane `i` without changing `len`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= WIDE_LANES`.
    #[inline]
    pub fn set(&mut self, i: usize, aabb: &Aabb) {
        self.min_x[i] = aabb.min.x;
        self.min_y[i] = aabb.min.y;
        self.min_z[i] = aabb.min.z;
        self.max_x[i] = aabb.max.x;
        self.max_y[i] = aabb.max.y;
        self.max_z[i] = aabb.max.z;
    }

    /// Reconstructs lane `i` as a scalar [`Aabb`].
    ///
    /// # Panics
    ///
    /// Panics if `i >= WIDE_LANES`.
    #[inline]
    pub fn get(&self, i: usize) -> Aabb {
        Aabb::new(
            Vec3::new(self.min_x[i], self.min_y[i], self.min_z[i]),
            Vec3::new(self.max_x[i], self.max_y[i], self.max_z[i]),
        )
    }

    /// Number of live lanes.
    #[inline]
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// `true` when no lanes are live.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Slab test of one ray against every live lane.
    ///
    /// Lane `i` of the result is bit-identical to
    /// `self.get(i).intersect(ray, inv_dir)`: the same multiplies,
    /// `f32::min`/`f32::max` folds (including their NaN behavior for
    /// axis-parallel rays), clamping, and comparison, in the same
    /// order. Dead lanes never set their mask bit.
    #[inline]
    // The index drives six parallel arrays plus the mask bit, which is
    // the SoA point — an iterator over one of them would obscure that.
    #[allow(clippy::needless_range_loop)]
    pub fn intersect(&self, ray: &Ray, inv_dir: Vec3) -> WideHits {
        let mut entries = [0.0f32; WIDE_LANES];
        let mut mask = 0u8;
        // A counted loop over the fixed-width arrays: the bound is
        // `len`, but every lane's arithmetic is independent, which is
        // what lets the compiler unroll/vectorize the body.
        for i in 0..self.len as usize {
            let t0x = (self.min_x[i] - ray.origin.x) * inv_dir.x;
            let t0y = (self.min_y[i] - ray.origin.y) * inv_dir.y;
            let t0z = (self.min_z[i] - ray.origin.z) * inv_dir.z;
            let t1x = (self.max_x[i] - ray.origin.x) * inv_dir.x;
            let t1y = (self.max_y[i] - ray.origin.y) * inv_dir.y;
            let t1z = (self.max_z[i] - ray.origin.z) * inv_dir.z;
            // Same fold shape as Aabb::intersect: per-axis min/max,
            // then entry = max(near_x, near_y, near_z, t_min) and
            // exit = min(far_x, far_y, far_z, t_max).
            let near_x = t0x.min(t1x);
            let near_y = t0y.min(t1y);
            let near_z = t0z.min(t1z);
            let far_x = t0x.max(t1x);
            let far_y = t0y.max(t1y);
            let far_z = t0z.max(t1z);
            let t_entry = near_x.max(near_y).max(near_z).max(ray.t_min);
            let t_exit = far_x.min(far_y).min(far_z).min(ray.t_max);
            if t_entry <= t_exit {
                mask |= 1 << i;
                entries[i] = t_entry;
            }
        }
        WideHits { mask, entries }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_boxes() -> Vec<Aabb> {
        vec![
            Aabb::new(Vec3::new(1.0, -1.0, -1.0), Vec3::new(2.0, 1.0, 1.0)),
            Aabb::new(Vec3::new(5.0, -0.5, -0.5), Vec3::new(6.0, 0.5, 0.5)),
            Aabb::new(Vec3::new(-3.0, -1.0, -1.0), Vec3::new(-2.0, 1.0, 1.0)),
            Aabb::new(Vec3::new(0.0, 3.0, 0.0), Vec3::new(1.0, 4.0, 1.0)),
            Aabb::new(Vec3::new(1.5, -0.2, -0.2), Vec3::new(1.7, 0.2, 0.2)),
        ]
    }

    fn sample_rays() -> Vec<Ray> {
        vec![
            Ray::new(Vec3::ZERO, Vec3::X),
            Ray::new(Vec3::new(-5.0, 0.0, 0.0), Vec3::X),
            Ray::new(Vec3::new(0.5, -5.0, 0.5), Vec3::Y),
            Ray::new(Vec3::new(0.5, 0.5, 0.5), Vec3::Y), // axis-parallel inside slabs
            Ray::with_interval(Vec3::ZERO, Vec3::X, 1e-4, 1.6),
            Ray::new(Vec3::splat(-2.0), Vec3::ONE.normalized()),
            Ray::new(Vec3::new(10.0, 10.0, 10.0), Vec3::Z), // misses all
        ]
    }

    #[test]
    fn lanes_match_scalar_bitwise() {
        let boxes = sample_boxes();
        let wide = WideAabb::from_boxes(&boxes);
        assert_eq!(wide.len(), boxes.len());
        for ray in sample_rays() {
            let inv = ray.inv_direction();
            let hits = wide.intersect(&ray, inv);
            for (i, b) in boxes.iter().enumerate() {
                let scalar = b.intersect(&ray, inv);
                assert_eq!(hits.entry(i), scalar, "lane {i} diverged for {ray:?}");
                // Bit-level equality, not approximate.
                if let (Some(w), Some(s)) = (hits.entry(i), scalar) {
                    assert_eq!(w.to_bits(), s.to_bits());
                }
            }
        }
    }

    #[test]
    fn dead_lanes_never_hit() {
        let boxes = sample_boxes();
        let wide = WideAabb::from_boxes(&boxes[..2]);
        let ray = Ray::new(Vec3::ZERO, Vec3::X);
        let hits = wide.intersect(&ray, ray.inv_direction());
        for i in wide.len()..WIDE_LANES {
            assert_eq!(hits.entry(i), None, "dead lane {i} reported a hit");
        }
    }

    #[test]
    fn empty_batch_hits_nothing() {
        let wide = WideAabb::empty();
        assert!(wide.is_empty());
        let ray = Ray::new(Vec3::ZERO, Vec3::X);
        assert!(wide.intersect(&ray, ray.inv_direction()).is_empty());
    }

    #[test]
    fn set_get_round_trip() {
        let boxes = sample_boxes();
        let wide = WideAabb::from_boxes(&boxes);
        for (i, b) in boxes.iter().enumerate() {
            assert_eq!(&wide.get(i), b);
        }
    }

    #[test]
    fn shrunk_t_max_culls_lanes_like_scalar() {
        let boxes = sample_boxes();
        let wide = WideAabb::from_boxes(&boxes);
        let mut ray = Ray::new(Vec3::ZERO, Vec3::X);
        ray.t_max = 1.5; // inside the first box, short of the second
        let inv = ray.inv_direction();
        let hits = wide.intersect(&ray, inv);
        for (i, b) in boxes.iter().enumerate() {
            assert_eq!(hits.entry(i), b.intersect(&ray, inv));
        }
    }

    #[test]
    #[should_panic(expected = "too many boxes")]
    fn from_boxes_rejects_overflow() {
        let boxes = vec![Aabb::new(Vec3::ZERO, Vec3::ONE); WIDE_LANES + 1];
        let _ = WideAabb::from_boxes(&boxes);
    }
}
