//! Rays and ray-interval bookkeeping.

use crate::Vec3;
use std::fmt;

/// A half-open parametric ray `origin + t * direction` for `t` in
/// `[t_min, t_max]`.
///
/// Rays carry their valid parametric interval so that traversal can shrink
/// `t_max` as closer hits are found (early ray termination).
///
/// # Examples
///
/// ```
/// use rt_geometry::{Ray, Vec3};
///
/// let ray = Ray::new(Vec3::ZERO, Vec3::X);
/// assert_eq!(ray.at(2.0), Vec3::new(2.0, 0.0, 0.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Ray {
    /// Ray origin.
    pub origin: Vec3,
    /// Ray direction. Not required to be normalized; `t` values are
    /// expressed in units of the direction's length.
    pub direction: Vec3,
    /// Minimum valid `t` (used to avoid self-intersection).
    pub t_min: f32,
    /// Maximum valid `t`. Shrunk by traversal as closer hits are found.
    pub t_max: f32,
}

impl Ray {
    /// Creates a ray with the default interval `[1e-4, +inf)`.
    ///
    /// The small positive `t_min` avoids re-intersecting the surface a
    /// secondary ray was spawned from.
    #[inline]
    pub fn new(origin: Vec3, direction: Vec3) -> Self {
        Ray {
            origin,
            direction,
            t_min: 1e-4,
            t_max: f32::INFINITY,
        }
    }

    /// Creates a ray with an explicit parametric interval.
    #[inline]
    pub fn with_interval(origin: Vec3, direction: Vec3, t_min: f32, t_max: f32) -> Self {
        Ray {
            origin,
            direction,
            t_min,
            t_max,
        }
    }

    /// Point on the ray at parameter `t`.
    #[inline]
    pub fn at(&self, t: f32) -> Vec3 {
        self.origin + self.direction * t
    }

    /// Precomputed reciprocal direction for the AABB slab test.
    ///
    /// Zero direction components map to infinities, which the slab test
    /// handles correctly via IEEE semantics.
    #[inline]
    pub fn inv_direction(&self) -> Vec3 {
        self.direction.recip()
    }
}

impl fmt::Display for Ray {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Ray[{} -> {}, t in [{}, {}]]",
            self.origin, self.direction, self.t_min, self.t_max
        )
    }
}

/// Record of the closest intersection found so far for a ray.
///
/// `t` starts at `f32::INFINITY` and decreases monotonically as closer
/// primitives are found; `primitive` identifies the closest-hit primitive.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HitRecord {
    /// Parametric distance of the closest hit, `f32::INFINITY` if none.
    pub t: f32,
    /// Index of the hit primitive, if any.
    pub primitive: Option<u32>,
}

impl HitRecord {
    /// A record representing "no hit yet".
    pub const MISS: HitRecord = HitRecord {
        t: f32::INFINITY,
        primitive: None,
    };

    /// Creates an empty record (no hit).
    #[inline]
    pub fn new() -> Self {
        HitRecord::MISS
    }

    /// `true` if some primitive has been hit.
    #[inline]
    pub fn is_hit(&self) -> bool {
        self.primitive.is_some()
    }

    /// Records `(t, primitive)` if it is closer than the current hit.
    /// Returns `true` if the record was updated.
    #[inline]
    pub fn update(&mut self, t: f32, primitive: u32) -> bool {
        if t < self.t {
            self.t = t;
            self.primitive = Some(primitive);
            true
        } else {
            false
        }
    }
}

impl Default for HitRecord {
    fn default() -> Self {
        HitRecord::MISS
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ray_evaluation() {
        let r = Ray::new(Vec3::new(1.0, 0.0, 0.0), Vec3::new(0.0, 2.0, 0.0));
        assert_eq!(r.at(0.0), Vec3::new(1.0, 0.0, 0.0));
        assert_eq!(r.at(1.5), Vec3::new(1.0, 3.0, 0.0));
    }

    #[test]
    fn default_interval_guards_self_intersection() {
        let r = Ray::new(Vec3::ZERO, Vec3::X);
        assert!(r.t_min > 0.0);
        assert_eq!(r.t_max, f32::INFINITY);
    }

    #[test]
    fn with_interval_sets_bounds() {
        let r = Ray::with_interval(Vec3::ZERO, Vec3::X, 0.5, 9.0);
        assert_eq!(r.t_min, 0.5);
        assert_eq!(r.t_max, 9.0);
    }

    #[test]
    fn inv_direction_matches_recip() {
        let r = Ray::new(Vec3::ZERO, Vec3::new(2.0, 0.0, -0.5));
        let inv = r.inv_direction();
        assert_eq!(inv.x, 0.5);
        assert!(inv.y.is_infinite());
        assert_eq!(inv.z, -2.0);
    }

    #[test]
    fn hit_record_updates_only_when_closer() {
        let mut rec = HitRecord::new();
        assert!(!rec.is_hit());
        assert!(rec.update(5.0, 10));
        assert_eq!(rec.t, 5.0);
        assert_eq!(rec.primitive, Some(10));
        // Farther hit does not replace.
        assert!(!rec.update(7.0, 11));
        assert_eq!(rec.primitive, Some(10));
        // Closer hit replaces.
        assert!(rec.update(2.0, 12));
        assert_eq!(rec.primitive, Some(12));
        assert_eq!(rec.t, 2.0);
    }

    #[test]
    fn hit_record_default_is_miss() {
        assert_eq!(HitRecord::default(), HitRecord::MISS);
        assert!(!HitRecord::MISS.is_hit());
    }

    #[test]
    fn ray_display_is_nonempty() {
        let s = Ray::new(Vec3::ZERO, Vec3::X).to_string();
        assert!(s.contains("Ray"));
    }
}
