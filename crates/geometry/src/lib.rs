//! Geometry primitives for the treelet-prefetching ray tracing stack.
//!
//! This crate provides the small, allocation-free building blocks shared by
//! every other crate in the workspace:
//!
//! - [`Vec3`] — three-component `f32` vector,
//! - [`Ray`] / [`HitRecord`] — parametric rays and closest-hit bookkeeping,
//! - [`Aabb`] — axis-aligned bounding boxes with the slab intersection test,
//! - [`WideAabb`] — up to six boxes in structure-of-arrays form with a
//!   batched slab test, bit-identical per lane to [`Aabb::intersect`],
//! - [`Triangle`] — triangles with the Möller–Trumbore intersection test.
//!
//! # Examples
//!
//! Trace a ray against a triangle's bounding box, then the triangle itself —
//! the same two tests the RT unit's operation units perform in the paper:
//!
//! ```
//! use rt_geometry::{Aabb, Ray, Triangle, Vec3};
//!
//! let tri = Triangle::new(
//!     Vec3::new(-1.0, -1.0, 5.0),
//!     Vec3::new(1.0, -1.0, 5.0),
//!     Vec3::new(0.0, 1.0, 5.0),
//! );
//! let ray = Ray::new(Vec3::ZERO, Vec3::Z);
//! let aabb = tri.aabb();
//! assert!(aabb.intersect(&ray, ray.inv_direction()).is_some());
//! assert_eq!(tri.intersect(&ray), Some(5.0));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod aabb;
mod ray;
mod triangle;
mod vec3;
mod wide;

pub use aabb::Aabb;
pub use ray::{HitRecord, Ray};
pub use triangle::Triangle;
pub use vec3::Vec3;
pub use wide::{WideAabb, WideHits, WIDE_LANES};
