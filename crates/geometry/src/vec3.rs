//! Three-component single-precision vector used for points, directions, and
//! colors throughout the ray tracing stack.

use std::fmt;
use std::ops::{Add, AddAssign, Div, DivAssign, Index, Mul, MulAssign, Neg, Sub, SubAssign};

/// A three-component `f32` vector.
///
/// `Vec3` is used both for positions and directions. It is a plain `Copy`
/// value type with the usual component-wise arithmetic operators.
///
/// # Examples
///
/// ```
/// use rt_geometry::Vec3;
///
/// let a = Vec3::new(1.0, 2.0, 3.0);
/// let b = Vec3::splat(2.0);
/// assert_eq!(a + b, Vec3::new(3.0, 4.0, 5.0));
/// assert_eq!(a.dot(b), 12.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Vec3 {
    /// X component.
    pub x: f32,
    /// Y component.
    pub y: f32,
    /// Z component.
    pub z: f32,
}

impl Vec3 {
    /// The zero vector.
    pub const ZERO: Vec3 = Vec3::new(0.0, 0.0, 0.0);
    /// The all-ones vector.
    pub const ONE: Vec3 = Vec3::new(1.0, 1.0, 1.0);
    /// Unit vector along +X.
    pub const X: Vec3 = Vec3::new(1.0, 0.0, 0.0);
    /// Unit vector along +Y.
    pub const Y: Vec3 = Vec3::new(0.0, 1.0, 0.0);
    /// Unit vector along +Z.
    pub const Z: Vec3 = Vec3::new(0.0, 0.0, 1.0);

    /// Creates a vector from its three components.
    #[inline]
    pub const fn new(x: f32, y: f32, z: f32) -> Self {
        Vec3 { x, y, z }
    }

    /// Creates a vector with all three components equal to `v`.
    #[inline]
    pub const fn splat(v: f32) -> Self {
        Vec3::new(v, v, v)
    }

    /// Dot product with `other`.
    #[inline]
    pub fn dot(self, other: Vec3) -> f32 {
        self.x * other.x + self.y * other.y + self.z * other.z
    }

    /// Cross product with `other`.
    #[inline]
    pub fn cross(self, other: Vec3) -> Vec3 {
        Vec3::new(
            self.y * other.z - self.z * other.y,
            self.z * other.x - self.x * other.z,
            self.x * other.y - self.y * other.x,
        )
    }

    /// Euclidean length.
    #[inline]
    pub fn length(self) -> f32 {
        self.dot(self).sqrt()
    }

    /// Squared Euclidean length (avoids the square root).
    #[inline]
    pub fn length_squared(self) -> f32 {
        self.dot(self)
    }

    /// Returns the vector scaled to unit length.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the vector has zero length.
    #[inline]
    pub fn normalized(self) -> Vec3 {
        let len = self.length();
        debug_assert!(len > 0.0, "cannot normalize a zero-length vector");
        self / len
    }

    /// Returns the component-wise minimum of `self` and `other`.
    #[inline]
    pub fn min(self, other: Vec3) -> Vec3 {
        Vec3::new(
            self.x.min(other.x),
            self.y.min(other.y),
            self.z.min(other.z),
        )
    }

    /// Returns the component-wise maximum of `self` and `other`.
    #[inline]
    pub fn max(self, other: Vec3) -> Vec3 {
        Vec3::new(
            self.x.max(other.x),
            self.y.max(other.y),
            self.z.max(other.z),
        )
    }

    /// Returns the largest of the three components.
    #[inline]
    pub fn max_component(self) -> f32 {
        self.x.max(self.y).max(self.z)
    }

    /// Returns the smallest of the three components.
    #[inline]
    pub fn min_component(self) -> f32 {
        self.x.min(self.y).min(self.z)
    }

    /// Index (0, 1, 2) of the component with the largest absolute value.
    #[inline]
    pub fn largest_axis(self) -> usize {
        let a = Vec3::new(self.x.abs(), self.y.abs(), self.z.abs());
        if a.x >= a.y && a.x >= a.z {
            0
        } else if a.y >= a.z {
            1
        } else {
            2
        }
    }

    /// Component-wise reciprocal, mapping exact zeros to `f32::INFINITY`
    /// with the sign of the zero. Used to precompute ray inverse directions
    /// for the slab test.
    #[inline]
    pub fn recip(self) -> Vec3 {
        Vec3::new(1.0 / self.x, 1.0 / self.y, 1.0 / self.z)
    }

    /// Linear interpolation between `self` (at `t = 0`) and `other`
    /// (at `t = 1`).
    #[inline]
    pub fn lerp(self, other: Vec3, t: f32) -> Vec3 {
        self + (other - self) * t
    }

    /// `true` if all components are finite (not NaN or infinite).
    #[inline]
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite() && self.z.is_finite()
    }

    /// Returns the components as an array `[x, y, z]`.
    #[inline]
    pub fn to_array(self) -> [f32; 3] {
        [self.x, self.y, self.z]
    }
}

impl From<[f32; 3]> for Vec3 {
    #[inline]
    fn from(a: [f32; 3]) -> Self {
        Vec3::new(a[0], a[1], a[2])
    }
}

impl From<Vec3> for [f32; 3] {
    #[inline]
    fn from(v: Vec3) -> Self {
        v.to_array()
    }
}

impl Index<usize> for Vec3 {
    type Output = f32;

    /// Accesses a component by axis index.
    ///
    /// # Panics
    ///
    /// Panics if `index > 2`.
    #[inline]
    fn index(&self, index: usize) -> &f32 {
        match index {
            0 => &self.x,
            1 => &self.y,
            2 => &self.z,
            _ => panic!("Vec3 index out of range: {index}"),
        }
    }
}

impl Add for Vec3 {
    type Output = Vec3;
    #[inline]
    fn add(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x + rhs.x, self.y + rhs.y, self.z + rhs.z)
    }
}

impl AddAssign for Vec3 {
    #[inline]
    fn add_assign(&mut self, rhs: Vec3) {
        *self = *self + rhs;
    }
}

impl Sub for Vec3 {
    type Output = Vec3;
    #[inline]
    fn sub(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x - rhs.x, self.y - rhs.y, self.z - rhs.z)
    }
}

impl SubAssign for Vec3 {
    #[inline]
    fn sub_assign(&mut self, rhs: Vec3) {
        *self = *self - rhs;
    }
}

impl Mul<f32> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn mul(self, rhs: f32) -> Vec3 {
        Vec3::new(self.x * rhs, self.y * rhs, self.z * rhs)
    }
}

impl Mul<Vec3> for f32 {
    type Output = Vec3;
    #[inline]
    fn mul(self, rhs: Vec3) -> Vec3 {
        rhs * self
    }
}

impl Mul<Vec3> for Vec3 {
    type Output = Vec3;
    /// Component-wise (Hadamard) product.
    #[inline]
    fn mul(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x * rhs.x, self.y * rhs.y, self.z * rhs.z)
    }
}

impl MulAssign<f32> for Vec3 {
    #[inline]
    fn mul_assign(&mut self, rhs: f32) {
        *self = *self * rhs;
    }
}

impl Div<f32> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn div(self, rhs: f32) -> Vec3 {
        Vec3::new(self.x / rhs, self.y / rhs, self.z / rhs)
    }
}

impl DivAssign<f32> for Vec3 {
    #[inline]
    fn div_assign(&mut self, rhs: f32) {
        *self = *self / rhs;
    }
}

impl Neg for Vec3 {
    type Output = Vec3;
    #[inline]
    fn neg(self) -> Vec3 {
        Vec3::new(-self.x, -self.y, -self.z)
    }
}

impl fmt::Display for Vec3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {}, {})", self.x, self.y, self.z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_constants() {
        assert_eq!(Vec3::ZERO, Vec3::new(0.0, 0.0, 0.0));
        assert_eq!(Vec3::ONE, Vec3::splat(1.0));
        assert_eq!(Vec3::default(), Vec3::ZERO);
        assert_eq!(Vec3::X + Vec3::Y + Vec3::Z, Vec3::ONE);
    }

    #[test]
    fn arithmetic_operators() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(4.0, 5.0, 6.0);
        assert_eq!(a + b, Vec3::new(5.0, 7.0, 9.0));
        assert_eq!(b - a, Vec3::new(3.0, 3.0, 3.0));
        assert_eq!(a * 2.0, Vec3::new(2.0, 4.0, 6.0));
        assert_eq!(2.0 * a, a * 2.0);
        assert_eq!(a * b, Vec3::new(4.0, 10.0, 18.0));
        assert_eq!(b / 2.0, Vec3::new(2.0, 2.5, 3.0));
        assert_eq!(-a, Vec3::new(-1.0, -2.0, -3.0));
    }

    #[test]
    fn compound_assignment() {
        let mut v = Vec3::new(1.0, 1.0, 1.0);
        v += Vec3::ONE;
        assert_eq!(v, Vec3::splat(2.0));
        v -= Vec3::ONE;
        assert_eq!(v, Vec3::ONE);
        v *= 3.0;
        assert_eq!(v, Vec3::splat(3.0));
        v /= 3.0;
        assert_eq!(v, Vec3::ONE);
    }

    #[test]
    fn dot_and_cross() {
        assert_eq!(Vec3::X.dot(Vec3::Y), 0.0);
        assert_eq!(Vec3::X.cross(Vec3::Y), Vec3::Z);
        assert_eq!(Vec3::Y.cross(Vec3::Z), Vec3::X);
        assert_eq!(Vec3::Z.cross(Vec3::X), Vec3::Y);
        // Cross product is anti-commutative.
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(-2.0, 0.5, 4.0);
        assert_eq!(a.cross(b), -(b.cross(a)));
        // Cross product is orthogonal to both inputs.
        assert!(a.cross(b).dot(a).abs() < 1e-5);
        assert!(a.cross(b).dot(b).abs() < 1e-5);
    }

    #[test]
    fn length_and_normalize() {
        let v = Vec3::new(3.0, 4.0, 0.0);
        assert_eq!(v.length(), 5.0);
        assert_eq!(v.length_squared(), 25.0);
        let n = v.normalized();
        assert!((n.length() - 1.0).abs() < 1e-6);
        assert_eq!(n, Vec3::new(0.6, 0.8, 0.0));
    }

    #[test]
    fn min_max_components() {
        let a = Vec3::new(1.0, 5.0, 3.0);
        let b = Vec3::new(2.0, 4.0, 3.0);
        assert_eq!(a.min(b), Vec3::new(1.0, 4.0, 3.0));
        assert_eq!(a.max(b), Vec3::new(2.0, 5.0, 3.0));
        assert_eq!(a.max_component(), 5.0);
        assert_eq!(a.min_component(), 1.0);
    }

    #[test]
    fn largest_axis_picks_dominant_component() {
        assert_eq!(Vec3::new(3.0, 1.0, 2.0).largest_axis(), 0);
        assert_eq!(Vec3::new(1.0, -5.0, 2.0).largest_axis(), 1);
        assert_eq!(Vec3::new(1.0, 2.0, -9.0).largest_axis(), 2);
        // Ties resolve to the lower axis index.
        assert_eq!(Vec3::splat(1.0).largest_axis(), 0);
    }

    #[test]
    fn recip_maps_zero_to_infinity() {
        let r = Vec3::new(2.0, 0.0, -4.0).recip();
        assert_eq!(r.x, 0.5);
        assert!(r.y.is_infinite() && r.y > 0.0);
        assert_eq!(r.z, -0.25);
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = Vec3::ZERO;
        let b = Vec3::new(2.0, 4.0, 6.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.lerp(b, 0.5), Vec3::new(1.0, 2.0, 3.0));
    }

    #[test]
    fn indexing_and_array_conversion() {
        let v = Vec3::new(7.0, 8.0, 9.0);
        assert_eq!(v[0], 7.0);
        assert_eq!(v[1], 8.0);
        assert_eq!(v[2], 9.0);
        assert_eq!(v.to_array(), [7.0, 8.0, 9.0]);
        assert_eq!(Vec3::from([7.0, 8.0, 9.0]), v);
        let arr: [f32; 3] = v.into();
        assert_eq!(arr, [7.0, 8.0, 9.0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn indexing_out_of_range_panics() {
        let _ = Vec3::ZERO[3];
    }

    #[test]
    fn is_finite_detects_nan_and_inf() {
        assert!(Vec3::ONE.is_finite());
        assert!(!Vec3::new(f32::NAN, 0.0, 0.0).is_finite());
        assert!(!Vec3::new(0.0, f32::INFINITY, 0.0).is_finite());
    }

    #[test]
    fn display_formats_components() {
        assert_eq!(Vec3::new(1.0, 2.5, -3.0).to_string(), "(1, 2.5, -3)");
    }
}
