//! Axis-aligned bounding boxes and the ray-box slab test.

use crate::{Ray, Vec3};
use std::fmt;

/// An axis-aligned bounding box described by its minimum and maximum corners.
///
/// The canonical empty box has `min = +inf` and `max = -inf` so that growing
/// it by any point or box yields that point or box.
///
/// # Examples
///
/// ```
/// use rt_geometry::{Aabb, Vec3};
///
/// let mut b = Aabb::empty();
/// b.grow_point(Vec3::ZERO);
/// b.grow_point(Vec3::new(1.0, 2.0, 3.0));
/// assert_eq!(b.extent(), Vec3::new(1.0, 2.0, 3.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Aabb {
    /// Minimum corner.
    pub min: Vec3,
    /// Maximum corner.
    pub max: Vec3,
}

impl Aabb {
    /// Creates a box from explicit corners.
    ///
    /// `min` must be component-wise `<= max` for a non-empty box; use
    /// [`Aabb::empty`] for the identity element of [`Aabb::grow_box`].
    #[inline]
    pub const fn new(min: Vec3, max: Vec3) -> Self {
        Aabb { min, max }
    }

    /// The canonical empty box (`min = +inf`, `max = -inf`).
    #[inline]
    pub fn empty() -> Self {
        Aabb {
            min: Vec3::splat(f32::INFINITY),
            max: Vec3::splat(f32::NEG_INFINITY),
        }
    }

    /// Box containing a single point.
    #[inline]
    pub fn from_point(p: Vec3) -> Self {
        Aabb { min: p, max: p }
    }

    /// `true` if the box contains no points.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.min.x > self.max.x || self.min.y > self.max.y || self.min.z > self.max.z
    }

    /// Expands the box to contain `p`.
    #[inline]
    pub fn grow_point(&mut self, p: Vec3) {
        self.min = self.min.min(p);
        self.max = self.max.max(p);
    }

    /// Expands the box to contain `other`.
    #[inline]
    pub fn grow_box(&mut self, other: &Aabb) {
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Returns the union of `self` and `other` without mutating either.
    #[inline]
    pub fn union(&self, other: &Aabb) -> Aabb {
        Aabb {
            min: self.min.min(other.min),
            max: self.max.max(other.max),
        }
    }

    /// Size of the box along each axis, or zero for empty boxes.
    #[inline]
    pub fn extent(&self) -> Vec3 {
        if self.is_empty() {
            Vec3::ZERO
        } else {
            self.max - self.min
        }
    }

    /// Center point of the box.
    #[inline]
    pub fn center(&self) -> Vec3 {
        (self.min + self.max) * 0.5
    }

    /// Surface area of the box (the SAH cost metric), zero for empty boxes.
    #[inline]
    pub fn surface_area(&self) -> f32 {
        let e = self.extent();
        2.0 * (e.x * e.y + e.y * e.z + e.z * e.x)
    }

    /// Axis index (0..3) of the longest extent.
    #[inline]
    pub fn longest_axis(&self) -> usize {
        self.extent().largest_axis()
    }

    /// `true` if `p` is inside or on the boundary of the box.
    #[inline]
    pub fn contains_point(&self, p: Vec3) -> bool {
        p.x >= self.min.x
            && p.x <= self.max.x
            && p.y >= self.min.y
            && p.y <= self.max.y
            && p.z >= self.min.z
            && p.z <= self.max.z
    }

    /// `true` if `other` is fully inside `self` (empty boxes are contained
    /// in everything).
    #[inline]
    pub fn contains_box(&self, other: &Aabb) -> bool {
        other.is_empty() || (self.contains_point(other.min) && self.contains_point(other.max))
    }

    /// Slab-method ray-box intersection.
    ///
    /// Returns the entry distance `t_entry` clamped to the ray interval if
    /// the ray intersects the box within `[ray.t_min, ray.t_max]`, `None`
    /// otherwise. The entry distance is what BVH traversal pushes with the
    /// node for front-to-back ordering and early-termination checks.
    #[inline]
    pub fn intersect(&self, ray: &Ray, inv_dir: Vec3) -> Option<f32> {
        let t0 = (self.min - ray.origin) * inv_dir;
        let t1 = (self.max - ray.origin) * inv_dir;
        let t_near = t0.min(t1);
        let t_far = t0.max(t1);
        let t_entry = t_near.max_component().max(ray.t_min);
        let t_exit = t_far.min_component().min(ray.t_max);
        if t_entry <= t_exit {
            Some(t_entry)
        } else {
            None
        }
    }
}

impl Default for Aabb {
    /// The empty box, so that `Aabb::default()` is the identity for
    /// [`Aabb::grow_box`].
    fn default() -> Self {
        Aabb::empty()
    }
}

impl fmt::Display for Aabb {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Aabb[{} .. {}]", self.min, self.max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_box() -> Aabb {
        Aabb::new(Vec3::ZERO, Vec3::ONE)
    }

    #[test]
    fn empty_box_properties() {
        let e = Aabb::empty();
        assert!(e.is_empty());
        assert_eq!(e.extent(), Vec3::ZERO);
        assert_eq!(e.surface_area(), 0.0);
        assert_eq!(Aabb::default(), e);
    }

    #[test]
    fn grow_point_from_empty() {
        let mut b = Aabb::empty();
        b.grow_point(Vec3::new(1.0, -2.0, 3.0));
        assert!(!b.is_empty());
        assert_eq!(b.min, b.max);
        b.grow_point(Vec3::new(-1.0, 2.0, 0.0));
        assert_eq!(b.min, Vec3::new(-1.0, -2.0, 0.0));
        assert_eq!(b.max, Vec3::new(1.0, 2.0, 3.0));
    }

    #[test]
    fn union_is_commutative_and_grows() {
        let a = Aabb::new(Vec3::ZERO, Vec3::ONE);
        let b = Aabb::new(Vec3::splat(2.0), Vec3::splat(3.0));
        let u = a.union(&b);
        assert_eq!(u, b.union(&a));
        assert!(u.contains_box(&a));
        assert!(u.contains_box(&b));
    }

    #[test]
    fn union_with_empty_is_identity() {
        let a = unit_box();
        assert_eq!(a.union(&Aabb::empty()), a);
    }

    #[test]
    fn surface_area_of_unit_box() {
        assert_eq!(unit_box().surface_area(), 6.0);
    }

    #[test]
    fn center_and_extent() {
        let b = Aabb::new(Vec3::new(-1.0, 0.0, 2.0), Vec3::new(3.0, 4.0, 6.0));
        assert_eq!(b.center(), Vec3::new(1.0, 2.0, 4.0));
        assert_eq!(b.extent(), Vec3::new(4.0, 4.0, 4.0));
    }

    #[test]
    fn longest_axis() {
        let b = Aabb::new(Vec3::ZERO, Vec3::new(1.0, 5.0, 2.0));
        assert_eq!(b.longest_axis(), 1);
    }

    #[test]
    fn containment() {
        let b = unit_box();
        assert!(b.contains_point(Vec3::splat(0.5)));
        assert!(b.contains_point(Vec3::ZERO)); // boundary
        assert!(!b.contains_point(Vec3::splat(1.1)));
        assert!(b.contains_box(&Aabb::new(Vec3::splat(0.2), Vec3::splat(0.8))));
        assert!(!b.contains_box(&Aabb::new(Vec3::splat(0.5), Vec3::splat(1.5))));
        assert!(b.contains_box(&Aabb::empty()));
    }

    #[test]
    fn ray_hits_box_straight_on() {
        let b = unit_box();
        let ray = Ray::new(Vec3::new(-1.0, 0.5, 0.5), Vec3::X);
        let t = b.intersect(&ray, ray.inv_direction());
        assert_eq!(t, Some(1.0));
    }

    #[test]
    fn ray_misses_box() {
        let b = unit_box();
        let ray = Ray::new(Vec3::new(-1.0, 2.0, 0.5), Vec3::X);
        assert_eq!(b.intersect(&ray, ray.inv_direction()), None);
    }

    #[test]
    fn ray_starting_inside_reports_clamped_entry() {
        let b = unit_box();
        let ray = Ray::new(Vec3::splat(0.5), Vec3::X);
        let t = b.intersect(&ray, ray.inv_direction());
        // Entry is clamped to t_min when the origin is inside.
        assert_eq!(t, Some(ray.t_min));
    }

    #[test]
    fn ray_behind_box_misses() {
        let b = unit_box();
        let ray = Ray::new(Vec3::new(2.0, 0.5, 0.5), Vec3::X);
        assert_eq!(b.intersect(&ray, ray.inv_direction()), None);
    }

    #[test]
    fn shrunk_t_max_culls_far_box() {
        let b = Aabb::new(Vec3::new(10.0, 0.0, 0.0), Vec3::new(11.0, 1.0, 1.0));
        let mut ray = Ray::new(Vec3::new(0.0, 0.5, 0.5), Vec3::X);
        assert!(b.intersect(&ray, ray.inv_direction()).is_some());
        ray.t_max = 5.0; // closer hit already found
        assert_eq!(b.intersect(&ray, ray.inv_direction()), None);
    }

    #[test]
    fn axis_parallel_ray_inside_slab() {
        // Direction has a zero component; inv_dir is infinite there.
        let b = unit_box();
        let ray = Ray::new(Vec3::new(0.5, -1.0, 0.5), Vec3::Y);
        assert!(b.intersect(&ray, ray.inv_direction()).is_some());
        let miss = Ray::new(Vec3::new(2.0, -1.0, 0.5), Vec3::Y);
        assert_eq!(b.intersect(&miss, miss.inv_direction()), None);
    }

    #[test]
    fn diagonal_ray_hits_corner_region() {
        let b = unit_box();
        let ray = Ray::new(Vec3::splat(-1.0), Vec3::ONE.normalized());
        let t = b.intersect(&ray, ray.inv_direction()).expect("should hit");
        // Entry at the corner (0,0,0): distance sqrt(3).
        assert!((t - 3f32.sqrt()).abs() < 1e-5);
    }

    #[test]
    fn display_is_nonempty() {
        assert!(unit_box().to_string().contains("Aabb"));
    }
}
